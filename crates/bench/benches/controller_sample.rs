//! Microbenchmarks for the controller path: the per-sample cost (the
//! paper argues dedicated adder+multiplier hardware for it is negligible)
//! and the one-time design cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tdtm_control::design::{design_controller, ControllerKind, FopdtPlant};
use tdtm_control::pid::{quantize, PidController};
use tdtm_dtm::{build_policy, DtmConfig, PolicyKind};

fn bench_controller(c: &mut Criterion) {
    let plant = FopdtPlant { gain: 8.0, time_constant: 8.4e-5, delay: 333e-9 };
    let gains = design_controller(&plant, ControllerKind::Pid);

    let mut pid = PidController::new(gains, 667e-9, 0.0, 1.0);
    c.bench_function("pid_sample", |b| {
        let mut e = 0.1f64;
        b.iter(|| {
            e = -e;
            black_box(pid.sample(black_box(e)))
        })
    });

    c.bench_function("quantize_8_levels", |b| b.iter(|| quantize(black_box(0.37), 8)));

    let cfg = DtmConfig { policy: PolicyKind::Pid, ..DtmConfig::default() };
    let mut policy = build_policy(&cfg);
    let temps = [109.0, 110.0, 110.5, 109.5, 108.0, 110.9, 107.0];
    c.bench_function("pid_policy_sample_7_blocks", |b| {
        b.iter(|| policy.sample(black_box(&temps)))
    });

    c.bench_function("design_pid_controller", |b| {
        b.iter(|| design_controller(black_box(&plant), ControllerKind::Pid))
    });
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
