//! Microbenchmarks for the controller path: the per-sample cost (the
//! paper argues dedicated adder+multiplier hardware for it is negligible)
//! and the one-time design cost.

use tdtm_bench::microbench::{black_box, Harness};
use tdtm_control::design::{design_controller, ControllerKind, FopdtPlant};
use tdtm_control::pid::{quantize, PidController};
use tdtm_dtm::{build_policy, DtmConfig, PolicyKind};

fn main() {
    let mut h = Harness::new();
    let plant = FopdtPlant { gain: 8.0, time_constant: 8.4e-5, delay: 333e-9 };
    let gains = design_controller(&plant, ControllerKind::Pid);

    let mut pid = PidController::new(gains, 667e-9, 0.0, 1.0);
    let mut e = 0.1f64;
    h.bench("pid_sample", || {
        e = -e;
        pid.sample(black_box(e))
    });

    h.bench("quantize_8_levels", || quantize(black_box(0.37), 8));

    let cfg = DtmConfig { policy: PolicyKind::Pid, ..DtmConfig::default() };
    let mut policy = build_policy(&cfg);
    let temps = [109.0, 110.0, 110.5, 109.5, 108.0, 110.9, 107.0];
    h.bench("pid_policy_sample_7_blocks", || policy.sample(black_box(&temps)));

    h.bench("design_pid_controller", || design_controller(black_box(&plant), ControllerKind::Pid));
}
