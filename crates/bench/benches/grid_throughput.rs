//! Whole-grid fleet throughput: cells per second of the paper's 18 × 5
//! result grid (every suite benchmark crossed with five DTM policies on
//! a hot 107 C heatsink) through `ExperimentGrid::run_threads` — the
//! quantity the batched SoA dispatch optimizes and the one
//! `BENCH_grid.json` pins.
//!
//! Two rows, both normalized to ns per grid cell (grid wall time over
//! cell count, so lower is better and the checker's ratio convention
//! holds):
//!
//! - `grid18x5_ref_ns_per_cell`: the per-cell reference dispatch (one
//!   `Simulator::run` per cell, batching off).
//! - `grid18x5_batch_ns_per_cell`: the batched SoA dispatch (eligible
//!   cells packed into lockstep `ThermalBatch` groups).
//!
//! The committed baseline also carries a `*_before` row — the per-cell
//! dispatch measured before this optimization round, kept for the
//! speedup record; `--check` ignores rows the current run does not
//! produce.
//!
//! Flags (after `--`):
//!
//! - `--json <path>`: write the measured rows as JSON (the committed
//!   baseline at the repo root is `BENCH_grid.json`).
//! - `--check <path>`: compare against a committed baseline and exit
//!   nonzero if any shared row regressed more than 3×.
//! - `--quick`: single repetition per row (the tier-1 smoke).

use tdtm_bench::microbench::{black_box, Harness};
use tdtm_core::engine::ExperimentGrid;
use tdtm_core::experiments::ExperimentScale;
use tdtm_core::SimConfig;
use tdtm_dtm::PolicyKind;

/// Regression tolerance for `--check`: current ns/op may be at most this
/// many times the committed baseline.
const CHECK_TOLERANCE: f64 = 3.0;

/// Worker threads for the grid runs — fixed so the row is comparable
/// across environments regardless of `TDTM_THREADS` or machine shape.
const THREADS: usize = 4;

/// The paper's result grid at quick scale, on a hot heatsink so every
/// policy actually actuates: 18 benchmarks × 5 policies = 90 cells.
fn grid() -> ExperimentGrid {
    fn hot(cfg: &mut SimConfig) {
        cfg.heatsink_temp = 107.0;
    }
    ExperimentGrid::new(ExperimentScale::quick()).suite().policies(&[
        PolicyKind::None,
        PolicyKind::Toggle1,
        PolicyKind::Pid,
        PolicyKind::VfScale,
        PolicyKind::Hierarchical,
    ])
    .variant("hot", hot)
}

/// Times whole grid executions on [`THREADS`] workers, normalized to ns
/// per cell, and prints the fleet rate in cells per second.
fn bench_grid(h: &mut Harness, name: &str, batching: bool, reps: u32) {
    let grid = grid();
    let cells = grid.len() as f64;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let results = grid.run_threads_with_batching(THREADS, batching);
        assert_eq!(results.runs.len(), grid.len());
        black_box(&results.runs);
        best = best.min(results.wall_seconds);
    }
    let ns = best * 1e9 / cells;
    println!(
        "{name:<44} {ns:>14.0} ns/cell {:>10.2} cells/s  ({} cells, {THREADS} threads)",
        cells / best,
        grid.len(),
    );
    h.push_row(name, ns);
}

/// Minimal parser for the flat `{"name": ns, ...}` objects
/// [`Harness::to_json`] emits.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim().trim_matches('"');
        if let Ok(ns) = value.trim().parse::<f64>() {
            rows.push((name.to_string(), ns));
        }
    }
    rows
}

fn check_against(baseline_path: &str, h: &Harness) -> bool {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = parse_baseline(&text);
    let mut ok = true;
    for (name, ns) in h.results() {
        let Some((_, base)) = baseline.iter().find(|(b, _)| b == name) else {
            continue;
        };
        let ratio = ns / base;
        let verdict = if ratio <= CHECK_TOLERANCE { "ok" } else { "REGRESSED" };
        println!("check {name:<40} {ns:>14.0} vs {base:>14.0} ns/cell  ({ratio:>5.2}x)  {verdict}");
        if ratio > CHECK_TOLERANCE {
            ok = false;
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let mut h = Harness::new();

    bench_grid(&mut h, "grid18x5_ref_ns_per_cell", false, reps);
    bench_grid(&mut h, "grid18x5_batch_ns_per_cell", true, reps);

    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).expect("--json needs a path");
        std::fs::write(path, h.to_json()).expect("write json baseline");
        eprintln!("wrote {path}");
    }
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check needs a path");
        if !check_against(path, &h) {
            eprintln!("bench regression check FAILED (>{CHECK_TOLERANCE}x vs {path})");
            std::process::exit(1);
        }
        eprintln!("bench regression check passed (tolerance {CHECK_TOLERANCE}x)");
    }
}
