//! End-to-end simulation throughput: cycles per second of the timing
//! core alone and of the full core→power→thermal loop.

use tdtm_bench::microbench::{black_box, Harness};
use tdtm_power::{PowerConfig, PowerModel};
use tdtm_thermal::block_model::{table3_blocks, BlockModel};
use tdtm_uarch::{Core, CoreConfig};
use tdtm_workloads::by_name;

fn main() {
    let mut h = Harness::new();

    for bench in ["gcc", "crafty"] {
        let w = by_name(bench).expect("suite workload");
        let mut core = Core::with_skip(CoreConfig::alpha21264_like(), w.program(), w.warmup_insts);
        h.bench(&format!("core_cycle_{bench}"), || {
            black_box(core.cycle());
        });
    }

    let w = by_name("gcc").expect("suite workload");
    let core_cfg = CoreConfig::alpha21264_like();
    let mut core = Core::with_skip(core_cfg, w.program(), w.warmup_insts);
    let power = PowerModel::new(&PowerConfig::default(), &core_cfg);
    let mut thermal = BlockModel::new(table3_blocks(), 103.0, core_cfg.cycle_time());
    h.bench("full_loop_cycle_gcc", || {
        let activity = core.cycle();
        let sample = power.cycle_power(activity);
        thermal.step(&sample.thermal_powers());
        black_box(thermal.temperatures()[0])
    });
}
