//! End-to-end simulation throughput: cycles per second of the timing
//! core alone, of the full core→power→thermal loop, and of whole
//! uninstrumented `Simulator::run` executions — the quantity the
//! run-plan fast path optimizes and the one `BENCH_simloop.json` pins.
//!
//! The `sim_run_*` rows time complete runs (no telemetry, no proxies, no
//! traces — the run-plan fast path) normalized to ns per simulated
//! cycle. Each exercises a distinct hot-loop regime:
//!
//! - `sim_run_gcc_none`: the plain chunked loop, no actuation.
//! - `sim_run_gcc_pid`: the controller toggles fetch duty every sample.
//! - `sim_run_gcc_vfscale`: V/f transitions stall the core in 15 K-cycle
//!   resync windows of constant idle power.
//! - `sim_run_gcc_leak`: the temperature-dependent leakage feedback path.
//! - `sim_run_crafty_none`: branchy low-IPC code (recovery-heavy).
//! - `sim_run_mc2_pid` / `sim_run_mc4_super`: whole chip runs through
//!   the coupled multicore kernel (normalized per chip cycle × cores),
//!   the latter with hot unthrottled neighbors under the supervisor.
//!
//! Flags (after `--`):
//!
//! - `--json <path>`: write the measured rows as JSON (the committed
//!   baseline at the repo root is `BENCH_simloop.json`).
//! - `--check <path>`: compare against a committed baseline and exit
//!   nonzero if any shared row regressed more than 3× (loose enough to
//!   be safe against CI noise; catches algorithmic regressions).
//! - `--quick`: single repetition per whole-run row and skip the
//!   calibrated micro rows (the tier-1 smoke).

use tdtm_bench::microbench::{black_box, Harness};
use tdtm_core::{MulticoreSim, SimConfig, Simulator};
use tdtm_dtm::{PolicyKind, SupervisorConfig};
use tdtm_power::{PowerConfig, PowerModel};
use tdtm_thermal::block_model::{table3_blocks, BlockModel};
use tdtm_uarch::{Core, CoreConfig};
use tdtm_workloads::by_name;

/// Regression tolerance for `--check`: current ns/op may be at most this
/// many times the committed baseline.
const CHECK_TOLERANCE: f64 = 3.0;

/// Minimum speedup idle-gap skipping must deliver on the fully-gated
/// toggle row (`sim_run_gcc_toggle` vs its `_noskip` twin); the gap is
/// several-fold in practice, so 1.5x stays safe against `--quick` noise
/// while catching a disabled or degraded skip path.
const SKIP_SPEEDUP_FLOOR: f64 = 1.5;

fn cell_config(policy: PolicyKind, heatsink: f64) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.dtm.policy = policy;
    cfg.max_insts = 120_000;
    cfg.heatsink_temp = heatsink;
    cfg
}

/// Times whole uninstrumented runs of one cell, normalized per simulated
/// cycle (construction excluded — this measures the cycle loop).
/// `skip` pins idle-gap skipping on or off; `None` keeps the `TDTM_SKIP`
/// default (on), which is what the plain rows bench.
fn bench_run(
    h: &mut Harness,
    name: &str,
    bench: &str,
    cfg: &SimConfig,
    reps: u32,
    skip: Option<bool>,
) {
    let w = by_name(bench).expect("suite workload");
    // One calibration run to learn the deterministic cycle count.
    let mut probe = Simulator::for_workload(cfg.clone(), &w);
    if let Some(on) = skip {
        probe.set_skip(on);
    }
    let report = probe.run();
    let cycles = report.total_cycles;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sim = Simulator::for_workload(cfg.clone(), &w);
        if let Some(on) = skip {
            sim.set_skip(on);
        }
        let start = std::time::Instant::now();
        black_box(sim.run());
        best = best.min(start.elapsed().as_secs_f64());
    }
    let ns = best * 1e9 / cycles as f64;
    println!(
        "{name:<44} {ns:>12.2} ns/op {:>16.0} ops/s  ({cycles} cycles, {} engaged)",
        1e9 / ns,
        report.engaged_samples,
    );
    h.push_row(name, ns);
}

/// Times whole multicore chip runs, normalized per chip cycle × cores
/// (ns per core-cycle, comparable to the single-core rows: the coupled
/// kernel should cost roughly one `sim_run` per core plus the flow
/// phase).
fn bench_chip_run(
    h: &mut Harness,
    name: &str,
    bench: &str,
    cfg: &SimConfig,
    reps: u32,
    skip: Option<bool>,
) {
    let w = by_name(bench).expect("suite workload");
    let mut probe = MulticoreSim::for_workload(cfg.clone(), &w);
    if let Some(on) = skip {
        probe.set_skip(on);
    }
    let report = probe.run();
    let core_cycles = report.chip_cycles * cfg.chip.cores as u64;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sim = MulticoreSim::for_workload(cfg.clone(), &w);
        if let Some(on) = skip {
            sim.set_skip(on);
        }
        let start = std::time::Instant::now();
        black_box(sim.run());
        best = best.min(start.elapsed().as_secs_f64());
    }
    let ns = best * 1e9 / core_cycles as f64;
    println!(
        "{name:<44} {ns:>12.2} ns/op {:>16.0} ops/s  ({} chip cycles x {} cores)",
        1e9 / ns,
        report.chip_cycles,
        cfg.chip.cores,
    );
    h.push_row(name, ns);
}

/// Minimal parser for the flat `{"name": ns, ...}` objects
/// [`Harness::to_json`] emits.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim().trim_matches('"');
        if let Ok(ns) = value.trim().parse::<f64>() {
            rows.push((name.to_string(), ns));
        }
    }
    rows
}

fn check_against(baseline_path: &str, h: &Harness) -> bool {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = parse_baseline(&text);
    let mut ok = true;
    for (name, ns) in h.results() {
        let Some((_, base)) = baseline.iter().find(|(b, _)| b == name) else {
            continue;
        };
        let ratio = ns / base;
        let verdict = if ratio <= CHECK_TOLERANCE { "ok" } else { "REGRESSED" };
        println!("check {name:<40} {ns:>10.2} vs {base:>10.2} ns/op  ({ratio:>5.2}x)  {verdict}");
        if ratio > CHECK_TOLERANCE {
            ok = false;
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 7 };
    let mut h = Harness::new();

    if !quick {
        for bench in ["gcc", "crafty"] {
            let w = by_name(bench).expect("suite workload");
            let mut core =
                Core::with_skip(CoreConfig::alpha21264_like(), w.program(), w.warmup_insts);
            h.bench(&format!("core_cycle_{bench}"), || {
                black_box(core.cycle());
            });
        }

        let w = by_name("gcc").expect("suite workload");
        let core_cfg = CoreConfig::alpha21264_like();
        let mut core = Core::with_skip(core_cfg, w.program(), w.warmup_insts);
        let power = PowerModel::new(&PowerConfig::default(), &core_cfg);
        let mut thermal = BlockModel::new(table3_blocks(), 103.0, core_cfg.cycle_time());
        h.bench("full_loop_cycle_gcc", || {
            let activity = core.cycle();
            let sample = power.cycle_power(activity);
            thermal.step(&sample.thermal_powers());
            black_box(thermal.temperatures()[0])
        });
    }

    // Whole uninstrumented runs (the run-plan fast path).
    bench_run(&mut h, "sim_run_gcc_none", "gcc", &cell_config(PolicyKind::None, 103.0), reps, None);
    bench_run(&mut h, "sim_run_gcc_pid", "gcc", &cell_config(PolicyKind::Pid, 107.0), reps, None);
    bench_run(
        &mut h,
        "sim_run_gcc_vfscale",
        "gcc",
        &cell_config(PolicyKind::VfScale, 107.0),
        reps,
        None,
    );
    let mut leak_cfg = cell_config(PolicyKind::None, 103.0);
    leak_cfg.leakage = Some(tdtm_power::LeakageModel::node_180nm());
    bench_run(&mut h, "sim_run_gcc_leak", "gcc", &leak_cfg, reps, None);
    bench_run(
        &mut h,
        "sim_run_crafty_none",
        "crafty",
        &cell_config(PolicyKind::None, 103.0),
        reps,
        None,
    );

    // Idle-gap skipping rows: at a 108 C heatsink the toggle policy's
    // duty-0.0 actuation engages at the first sample and never releases,
    // so the whole run (capped by `max_cycles`) is interval-long gated
    // windows — the pure skip regime. The `_noskip` twin pins skipping
    // off so the pair measures the fast-forward speedup directly.
    let mut toggle = cell_config(PolicyKind::Toggle1, 108.0);
    toggle.max_cycles = 1_000_000;
    bench_run(&mut h, "sim_run_gcc_toggle", "gcc", &toggle, reps, Some(true));
    bench_run(&mut h, "sim_run_gcc_toggle_noskip", "gcc", &toggle, reps, Some(false));

    // Multicore chip runs through the coupled thermal kernel: the 2-core
    // PID row measures the lockstep loop plus the flow phase; the 4-core
    // row adds hot unthrottled neighbors and the chip-level supervisor.
    let mut mc2 = cell_config(PolicyKind::Pid, 107.0);
    mc2.chip.cores = 2;
    bench_chip_run(&mut h, "sim_run_mc2_pid", "gcc", &mc2, reps, None);
    let mut mc4 = cell_config(PolicyKind::Pid, 107.0);
    mc4.chip.cores = 4;
    mc4.chip.neighbor_policy = Some(PolicyKind::None);
    mc4.chip.supervisor = Some(SupervisorConfig::default());
    bench_chip_run(&mut h, "sim_run_mc4_super", "gcc", &mc4, reps, None);

    // Parked-chip skip rows: unthrottled neighbors finish early and park
    // while the throttled core 0 keeps running — once the chip drains to
    // one gated core, the probe opens Parked-reason gaps every interval.
    let mut mc4_park = cell_config(PolicyKind::Toggle1, 107.0);
    mc4_park.chip.cores = 4;
    mc4_park.chip.neighbor_policy = Some(PolicyKind::None);
    bench_chip_run(&mut h, "sim_run_mc4_park", "gcc", &mc4_park, reps, Some(true));
    bench_chip_run(&mut h, "sim_run_mc4_park_noskip", "gcc", &mc4_park, reps, Some(false));

    // Gate the skip speedup on the fully-gated toggle row: a disabled or
    // degraded skip path shows up here long before the loose `--check`
    // tolerance would notice.
    let row = |name: &str| {
        h.results()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .expect("toggle rows always run")
    };
    let speedup = row("sim_run_gcc_toggle_noskip") / row("sim_run_gcc_toggle");
    println!("skip speedup sim_run_gcc_toggle: {speedup:.2}x (floor {SKIP_SPEEDUP_FLOOR}x)");
    if speedup < SKIP_SPEEDUP_FLOOR {
        eprintln!("idle-gap skip speedup below floor ({speedup:.2}x < {SKIP_SPEEDUP_FLOOR}x)");
        std::process::exit(1);
    }

    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).expect("--json needs a path");
        std::fs::write(path, h.to_json()).expect("write json baseline");
        eprintln!("wrote {path}");
    }
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check needs a path");
        if !check_against(path, &h) {
            eprintln!("bench regression check FAILED (>{CHECK_TOLERANCE}x vs {path})");
            std::process::exit(1);
        }
        eprintln!("bench regression check passed (tolerance {CHECK_TOLERANCE}x)");
    }
}
