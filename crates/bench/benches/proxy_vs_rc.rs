//! Cost comparison between the boxcar power proxy (prior work) and the
//! direct RC temperature model (this paper): the paper's model is not
//! just more accurate, it is also no more expensive per cycle.

use tdtm_bench::microbench::{black_box, Harness};
use tdtm_thermal::block_model::{table3_blocks, BlockModel};
use tdtm_thermal::BoxcarProxy;

fn main() {
    let mut h = Harness::new();
    for window in [10_000usize, 500_000] {
        let mut boxcar = BoxcarProxy::new(window);
        // Pre-fill so the steady-state (full window) path is measured.
        for i in 0..window {
            boxcar.push(i as f64 * 1e-3);
        }
        let mut p = 3.0f64;
        h.bench(&format!("boxcar_push_window_{window}"), || {
            p = 6.0 - p;
            boxcar.push(black_box(p));
            black_box(boxcar.average())
        });
    }

    let mut model = BlockModel::new(table3_blocks(), 103.0, 1.0 / 1.5e9);
    let powers = [3.0, 8.0, 2.5, 4.0, 9.0, 6.0, 5.0];
    h.bench("rc_model_step_plus_threshold_check", || {
        model.step(black_box(&powers));
        black_box(model.any_above(111.0))
    });
}
