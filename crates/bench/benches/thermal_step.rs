//! Microbenchmarks backing the paper's claim that the per-block RC model
//! is "computationally efficient": per-cycle thermal stepping must be
//! negligible next to pipeline and power modeling.

use tdtm_bench::microbench::{black_box, Harness};
use tdtm_thermal::block_model::{table3_blocks, BlockModel};
use tdtm_thermal::network::RcNetwork;

fn main() {
    let mut h = Harness::new();
    let dt = 1.0 / 1.5e9;
    let powers = [3.0, 8.0, 2.5, 4.0, 9.0, 6.0, 5.0];

    let mut exact = BlockModel::new(table3_blocks(), 103.0, dt);
    h.bench("block_model_step_exact_7_blocks", || exact.step(black_box(&powers)));

    let mut euler = BlockModel::new(table3_blocks(), 103.0, dt);
    h.bench("block_model_step_euler_7_blocks", || euler.step_euler(black_box(&powers)));

    // The full network (blocks + tangential + heatsink) for comparison:
    // the fidelity the simplified model avoids paying for.
    let mut net = RcNetwork::new(27.0);
    let sink = net.add_fixed_node(103.0);
    let blocks = table3_blocks();
    let nodes: Vec<_> = blocks
        .iter()
        .map(|p| {
            let n = net.add_node(p.c, 103.0);
            net.connect(n, sink, p.r);
            n
        })
        .collect();
    for i in 1..nodes.len() {
        net.connect(nodes[i - 1], nodes[i], 500.0);
    }
    for (n, p) in nodes.iter().zip(powers) {
        net.set_power(*n, p);
    }
    h.bench("full_rc_network_step_9_nodes", || net.step(black_box(dt)));
}
