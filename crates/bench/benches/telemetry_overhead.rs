//! Overhead of the telemetry layer (ISSUE: <2% on the hot paths when
//! disabled). Measures the instrumented primitives in isolation — a
//! thermal step plain vs. wrapped in a phase timer, histogram and
//! counter records, an event-ring push — and the end-to-end per-cycle
//! cost of a short simulator run with telemetry off vs. fully on.
//!
//! `--json <path>` additionally writes the rows as a JSON baseline
//! (committed as `BENCH_telemetry.json` at the repo root; the bench runs
//! with `crates/bench/` as its working directory):
//!
//! ```text
//! cargo bench -p tdtm-bench --bench telemetry_overhead -- --json ../../BENCH_telemetry.json
//! ```

use tdtm_bench::microbench::{black_box, Harness};
use tdtm_core::{MulticoreSim, SimConfig, Simulator};
use tdtm_dtm::{PolicyKind, SupervisorConfig};
use tdtm_telemetry::{Counter, Event, EventTrace, Histogram, Phase, PhaseProfile, TelemetryConfig};
use tdtm_thermal::block_model::{table3_blocks, BlockModel};
use tdtm_workloads::by_name;

fn sim_config() -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.dtm.policy = PolicyKind::Pid;
    cfg.max_insts = 60_000;
    cfg
}

fn chip_config() -> SimConfig {
    let mut cfg = sim_config();
    cfg.max_insts = 20_000;
    cfg.chip.cores = 2;
    cfg.chip.supervisor = Some(SupervisorConfig::default());
    cfg
}

/// ns per core-cycle of a 2-core supervised chip run, telemetry
/// configured by `cfg` — the multicore analogue of the rows above (the
/// chip loop threads per-core collectors plus a chip-level event ring).
fn chip_ns_per_cycle(h: &mut Harness, name: &str, cfg: Option<&TelemetryConfig>) {
    let w = by_name("gcc").expect("suite workload");
    let mut probe = MulticoreSim::for_workload(chip_config(), &w);
    let report = probe.run();
    let core_cycles = (report.cores.len() as u64 * report.chip_cycles) as f64;
    let start = std::time::Instant::now();
    let reps = 5u32;
    for _ in 0..reps {
        let mut sim = MulticoreSim::for_workload(chip_config(), &w);
        if let Some(cfg) = cfg {
            sim.enable_telemetry(cfg);
        }
        black_box(sim.run());
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / (reps as f64 * core_cycles);
    println!("{name:<44} {ns:>12.2} ns/cycle");
    h.push_row(name, ns);
}

/// ns per simulated cycle of a full run, telemetry configured by `cfg`.
fn run_ns_per_cycle(h: &mut Harness, name: &str, cfg: Option<&TelemetryConfig>) {
    let w = by_name("gcc").expect("suite workload");
    // One calibration run to learn the cycle count, then bench whole runs
    // and normalize per cycle.
    let mut probe = Simulator::for_workload(sim_config(), &w);
    let cycles = probe.run().total_cycles as f64;
    let start = std::time::Instant::now();
    let reps = 5u32;
    for _ in 0..reps {
        let mut sim = Simulator::for_workload(sim_config(), &w);
        if let Some(cfg) = cfg {
            sim.enable_telemetry(cfg);
        }
        black_box(sim.run());
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / (reps as f64 * cycles);
    println!("{name:<44} {ns:>12.2} ns/cycle");
    h.push_row(name, ns);
}

fn main() {
    let mut h = Harness::new();
    let dt = 1.0 / 1.5e9;
    let powers = [3.0, 8.0, 2.5, 4.0, 9.0, 6.0, 5.0];

    // The hot-path primitive, bare and behind a phase timer: the delta is
    // what `TelemetryConfig { phases: true }` costs per thermal step.
    let mut plain = BlockModel::new(table3_blocks(), 103.0, dt);
    h.bench("thermal_step_plain", || plain.step(black_box(&powers)));
    let mut timed = BlockModel::new(table3_blocks(), 103.0, dt);
    let mut profile = PhaseProfile::new();
    h.bench("thermal_step_phase_timed", || {
        profile.time(Phase::ThermalStep, || timed.step(black_box(&powers)))
    });

    let counter = Counter::new();
    h.bench("counter_add", || counter.add(black_box(1)));
    let hist = Histogram::new(80.0, 120.0, 80);
    h.bench("histogram_record", || hist.record(black_box(110.8)));
    let mut ring = EventTrace::new(4096, 1);
    h.bench("event_ring_record", || {
        ring.record(Event::DutyChange { cycle: 1_000, core: 0, from: 1.0, to: 0.5 })
    });

    // End to end: the <2%-when-disabled acceptance bound compares the
    // first two rows; the third shows what full tracing costs when you
    // do ask for it.
    run_ns_per_cycle(&mut h, "sim_run_telemetry_off", None);
    run_ns_per_cycle(
        &mut h,
        "sim_run_metrics_and_phases",
        Some(&TelemetryConfig::metrics_and_phases()),
    );
    run_ns_per_cycle(&mut h, "sim_run_full_stride1", Some(&TelemetryConfig::full(65_536, 1)));

    // Same bound on the lockstep chip: telemetry off vs. fully on for a
    // 2-core supervised run.
    chip_ns_per_cycle(&mut h, "mc2_run_telemetry_off", None);
    chip_ns_per_cycle(&mut h, "mc2_run_full_stride1", Some(&TelemetryConfig::full(65_536, 1)));

    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).expect("--json needs a path");
        std::fs::write(path, h.to_json()).expect("write json baseline");
        eprintln!("wrote {path}");
    }
}
