//! A minimal complex-number type (the workspace avoids external numeric
//! crates; this is all the frequency-domain code needs).

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + im·j`.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + im·j`.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A purely imaginary `w·j` (the `s = jω` evaluation point).
    pub fn jw(w: f64) -> Complex {
        Complex { re: 0.0, im: w }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex { re: self.re, im: -self.im }
    }

    /// `e^z`.
    pub fn exp(self) -> Complex {
        let r = self.re.exp();
        Complex { re: r * self.im.cos(), im: r * self.im.sin() }
    }

    /// Reciprocal `1/z`.
    ///
    /// # Panics
    ///
    /// Panics on division by exact zero.
    pub fn recip(self) -> Complex {
        let d = self.re * self.re + self.im * self.im;
        assert!(d != 0.0, "division by zero complex number");
        Complex { re: self.re / d, im: -self.im / d }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, k: f64) -> Complex {
        Complex { re: self.re * k, im: self.im * k }
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division via the reciprocal is the point, not a typo for `/`.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: Complex) -> Complex {
        self * o.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.recip() - Complex::ONE).abs() < 1e-15);
        assert_eq!(Complex::J * Complex::J, Complex::new(-1.0, 0.0));
        assert_eq!(z + (-z), Complex::ZERO);
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let e = Complex::jw(std::f64::consts::PI).exp();
        assert!((e.re + 1.0).abs() < 1e-12);
        assert!(e.im.abs() < 1e-12);
    }

    #[test]
    fn arg_quadrants() {
        assert!((Complex::new(1.0, 1.0).arg() - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
        assert!((Complex::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < 1e-15);
        assert!((Complex::new(0.0, -2.0).arg() + std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn division_matches_multiplication() {
        let a = Complex::new(2.0, 5.0);
        let b = Complex::new(-1.5, 0.25);
        let q = a / b;
        assert!((q * b - a).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_reciprocal_panics() {
        let _ = Complex::ZERO.recip();
    }
}
