//! Continuous transfer functions with dead time:
//! `H(s) = num(s)/den(s) · e^{-s·L}`.

use crate::complex::Complex;
use crate::poly::Polynomial;
use std::fmt;

/// A rational transfer function with an optional pure delay.
#[derive(Clone, PartialEq, Debug)]
pub struct TransferFunction {
    /// Numerator polynomial.
    pub num: Polynomial,
    /// Denominator polynomial.
    pub den: Polynomial,
    /// Dead time (seconds).
    pub delay: f64,
}

impl TransferFunction {
    /// Creates `num/den · e^{-s·delay}`.
    ///
    /// # Panics
    ///
    /// Panics if the denominator is the zero polynomial or `delay` is
    /// negative.
    pub fn new(num: Polynomial, den: Polynomial, delay: f64) -> TransferFunction {
        assert!(!den.is_zero(), "denominator must be nonzero");
        assert!(delay >= 0.0, "delay must be nonnegative");
        TransferFunction { num, den, delay }
    }

    /// A static gain `k`.
    pub fn gain(k: f64) -> TransferFunction {
        TransferFunction::new(Polynomial::constant(k), Polynomial::constant(1.0), 0.0)
    }

    /// First-order lag `k / (τ·s + 1)` with dead time `delay`.
    ///
    /// This is the paper's plant model: `k` is the steady-state gain (the
    /// thermal R here), `τ` the block thermal time constant, and the delay
    /// half the sampling period introduced by sampling.
    pub fn first_order(k: f64, tau: f64, delay: f64) -> TransferFunction {
        TransferFunction::new(Polynomial::constant(k), Polynomial::new(vec![1.0, tau]), delay)
    }

    /// An ideal PID controller `Kp + Ki/s + Kd·s = (Kd·s² + Kp·s + Ki)/s`.
    pub fn pid(kp: f64, ki: f64, kd: f64) -> TransferFunction {
        TransferFunction::new(
            Polynomial::new(vec![ki, kp, kd]),
            Polynomial::new(vec![0.0, 1.0]),
            0.0,
        )
    }

    /// Frequency response `H(jω)`.
    pub fn freq_response(&self, w: f64) -> Complex {
        let s = Complex::jw(w);
        let h = self.num.eval_complex(s) / self.den.eval_complex(s);
        if self.delay == 0.0 {
            h
        } else {
            h * Complex::jw(-w * self.delay).exp()
        }
    }

    /// Magnitude of the frequency response at `ω`.
    pub fn magnitude(&self, w: f64) -> f64 {
        self.freq_response(w).abs()
    }

    /// Phase of the frequency response at `ω`, in radians, **unwrapped for
    /// the delay term** (the rational part uses the principal value; the
    /// `-ω·L` delay contribution is added exactly, so it can go below -π).
    pub fn phase(&self, w: f64) -> f64 {
        let s = Complex::jw(w);
        let rational = (self.num.eval_complex(s) / self.den.eval_complex(s)).arg();
        rational - w * self.delay
    }

    /// DC gain `H(0)` (may be infinite for integrating systems).
    pub fn dc_gain(&self) -> f64 {
        let d = self.den.eval(0.0);
        if d == 0.0 {
            f64::INFINITY * self.num.eval(0.0).signum()
        } else {
            self.num.eval(0.0) / d
        }
    }

    /// Series (cascade) composition `self · other`: delays add, rational
    /// parts multiply.
    pub fn series(&self, other: &TransferFunction) -> TransferFunction {
        TransferFunction::new(
            &self.num * &other.num,
            &self.den * &other.den,
            self.delay + other.delay,
        )
    }

    /// Closes a unity negative-feedback loop around this open-loop transfer
    /// function, returning the closed-loop *characteristic polynomial*
    /// `den(s) + num(s)` — valid only when the dead time is zero (use a
    /// Padé approximation first otherwise).
    ///
    /// # Panics
    ///
    /// Panics if the transfer function has dead time.
    pub fn characteristic_polynomial(&self) -> Polynomial {
        assert!(
            self.delay == 0.0,
            "characteristic polynomial of a dead-time system needs a Padé approximation"
        );
        &self.den + &self.num
    }

    /// Replaces the dead time with its first-order Padé approximation
    /// `e^{-sL} ≈ (1 - sL/2)/(1 + sL/2)`, returning a rational
    /// (delay-free) transfer function suitable for Routh-Hurwitz analysis.
    pub fn pade1(&self) -> TransferFunction {
        if self.delay == 0.0 {
            return self.clone();
        }
        let half = self.delay / 2.0;
        let num = &self.num * &Polynomial::new(vec![1.0, -half]);
        let den = &self.den * &Polynomial::new(vec![1.0, half]);
        TransferFunction::new(num, den, 0.0)
    }
}

impl fmt::Display for TransferFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) / ({})", self.num, self.den)?;
        if self.delay > 0.0 {
            write!(f, " · e^(-{}s)", self.delay)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_bode_points() {
        let h = TransferFunction::first_order(2.0, 1.0, 0.0);
        assert_eq!(h.dc_gain(), 2.0);
        // At the corner frequency, |H| = k/√2 and phase = -45°.
        let w = 1.0;
        assert!((h.magnitude(w) - 2.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!((h.phase(w) + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn delay_contributes_linear_phase_only() {
        let h0 = TransferFunction::first_order(1.0, 0.5, 0.0);
        let h1 = TransferFunction::first_order(1.0, 0.5, 0.1);
        let w = 3.0;
        assert!((h0.magnitude(w) - h1.magnitude(w)).abs() < 1e-12);
        assert!((h0.phase(w) - 0.3 - h1.phase(w)).abs() < 1e-12);
    }

    #[test]
    fn pid_transfer_function() {
        let c = TransferFunction::pid(2.0, 8.0, 0.5);
        // At ω = 4: C(j4) = 2 + 8/(4j) + 0.5·4j = 2 + j(2 - 2) = 2.
        let z = c.freq_response(4.0);
        assert!((z - Complex::new(2.0, 0.0)).abs() < 1e-12);
        assert!(c.dc_gain().is_infinite());
    }

    #[test]
    fn series_composes() {
        let a = TransferFunction::first_order(2.0, 1.0, 0.05);
        let b = TransferFunction::gain(3.0);
        let ab = a.series(&b);
        assert_eq!(ab.dc_gain(), 6.0);
        assert_eq!(ab.delay, 0.05);
        let w = 0.7;
        let direct = a.freq_response(w) * b.freq_response(w);
        assert!((ab.freq_response(w) - direct).abs() < 1e-12);
    }

    #[test]
    fn characteristic_polynomial_of_unity_loop() {
        // Open loop k/(s+1): char poly s + 1 + k.
        let ol = TransferFunction::new(
            Polynomial::constant(4.0),
            Polynomial::new(vec![1.0, 1.0]),
            0.0,
        );
        assert_eq!(ol.characteristic_polynomial(), Polynomial::new(vec![5.0, 1.0]));
    }

    #[test]
    fn pade_matches_delay_at_low_frequency() {
        let h = TransferFunction::first_order(1.0, 1.0, 0.2);
        let p = h.pade1();
        assert_eq!(p.delay, 0.0);
        for w in [0.01, 0.1, 0.5] {
            let d = (h.freq_response(w) - p.freq_response(w)).abs();
            assert!(d < 2e-3 * (1.0 + w), "w={w}: pade error {d}");
        }
    }

    #[test]
    #[should_panic(expected = "Padé")]
    fn char_poly_rejects_dead_time() {
        let h = TransferFunction::first_order(1.0, 1.0, 0.1);
        let _ = h.characteristic_polynomial();
    }
}
