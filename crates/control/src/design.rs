//! Controller design against the paper's plant model.
//!
//! Section 3.2 models the controlled thermal structure as a first-order
//! system with dead time (FOPDT):
//!
//! ```text
//! P(s) = K · e^{-s·L} / (τ·s + 1)
//! ```
//!
//! where `K` is the steady-state gain (the thermal R scaled by actuator and
//! sensor gains), `τ` the thermal time constant ("we used the longest time
//! constant of the various blocks"), and `L` the sampling-induced delay
//! ("half the sampling period").
//!
//! Gains are chosen by *phase-constant loop shaping*, the methodology the
//! paper sketches: pick a target phase margin (60°, the conventional
//! value), assign the controller a phase contribution φ at the gain
//! crossover — the "phase constant" the paper sets per controller family —
//! and solve for the crossover frequency and the gain that puts the loop
//! magnitude at unity there. For the PID family the remaining degree of
//! freedom is fixed with the classical `Ti = 4·Td` coupling. The paper's
//! exact φ values were lost to OCR; we use the conventional assignments
//! (P/PID: 0°, PI: −45°, PD: +45°) and verify stability of every produced
//! design with Routh-Hurwitz and margin checks in the tests.
//!
//! Ziegler-Nichols open-loop (reaction-curve) tuning is also provided as an
//! ablation baseline.

use crate::tf::TransferFunction;

/// The paper's plant model: first-order-plus-dead-time thermal dynamics.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FopdtPlant {
    /// Steady-state gain `K` (output units per unit of controller output).
    pub gain: f64,
    /// Time constant `τ` in seconds.
    pub time_constant: f64,
    /// Dead time `L` in seconds.
    pub delay: f64,
}

impl FopdtPlant {
    /// The plant as a transfer function.
    pub fn transfer_function(&self) -> TransferFunction {
        TransferFunction::first_order(self.gain, self.time_constant, self.delay)
    }

    /// Phase of the plant at `ω` (radians; monotone decreasing).
    pub fn phase(&self, w: f64) -> f64 {
        -(w * self.time_constant).atan() - w * self.delay
    }

    /// Magnitude of the plant at `ω`.
    pub fn magnitude(&self, w: f64) -> f64 {
        self.gain.abs() / (1.0 + (w * self.time_constant).powi(2)).sqrt()
    }
}

/// Which controller family to design (Section 3.2's P / PD / PI / PID).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ControllerKind {
    /// Proportional only.
    P,
    /// Proportional + derivative.
    Pd,
    /// Proportional + integral.
    Pi,
    /// Proportional + integral + derivative.
    Pid,
}

impl ControllerKind {
    /// The controller's phase contribution φ at the gain crossover
    /// (the paper's "phase constant"), in radians.
    ///
    /// P and PID contribute no net phase; PD leads by 45°. PI must lag —
    /// a large lag (−45°) forces the crossover far below the dead-time
    /// region where the plant gain is still high, producing a sluggish
    /// design whose overshoot can pierce the thin setpoint-to-emergency
    /// margin; −20° keeps the loop brisk while preserving the 60° phase
    /// margin (verified by the stability tests and the DTM experiments).
    pub fn phase_constant(self) -> f64 {
        match self {
            ControllerKind::P | ControllerKind::Pid => 0.0,
            ControllerKind::Pi => -20f64.to_radians(),
            ControllerKind::Pd => 45f64.to_radians(),
        }
    }
}

/// PID gains `u = Kp·e + Ki·∫e dt + Kd·de/dt` (unused terms are zero).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct PidGains {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (per second).
    pub ki: f64,
    /// Derivative gain (seconds).
    pub kd: f64,
}

impl PidGains {
    /// The ideal-PID transfer function for these gains.
    pub fn transfer_function(&self) -> TransferFunction {
        if self.ki == 0.0 && self.kd == 0.0 {
            TransferFunction::gain(self.kp)
        } else {
            TransferFunction::pid(self.kp, self.ki, self.kd)
        }
    }

    /// Which family these gains belong to.
    pub fn kind(&self) -> ControllerKind {
        match (self.ki != 0.0, self.kd != 0.0) {
            (false, false) => ControllerKind::P,
            (false, true) => ControllerKind::Pd,
            (true, false) => ControllerKind::Pi,
            (true, true) => ControllerKind::Pid,
        }
    }
}

/// Target phase margin used by [`design_controller`] (60°, conventional).
pub const TARGET_PHASE_MARGIN: f64 = std::f64::consts::PI / 3.0;

/// Designs controller gains for `plant` with the phase-constant method.
///
/// # Panics
///
/// Panics if the plant has non-positive gain or time constant, or if the
/// required crossover phase is unreachable (which cannot happen for a plant
/// with positive dead time).
pub fn design_controller(plant: &FopdtPlant, kind: ControllerKind) -> PidGains {
    design_controller_with(plant, kind, TARGET_PHASE_MARGIN, kind.phase_constant())
}

/// [`design_controller`] with explicit phase margin and phase constant
/// (for sweeps/ablations).
///
/// # Panics
///
/// See [`design_controller`].
pub fn design_controller_with(
    plant: &FopdtPlant,
    kind: ControllerKind,
    phase_margin: f64,
    phi: f64,
) -> PidGains {
    assert!(plant.gain > 0.0 && plant.time_constant > 0.0, "plant must have positive K and τ");
    // Loop phase at crossover must be −π + PM; the controller contributes
    // φ, so the plant must contribute −π + PM − φ.
    let target = -std::f64::consts::PI + phase_margin - phi;
    assert!(target < 0.0, "unreachable crossover phase; lower the phase margin");
    let wc = solve_phase(plant, target);
    let m = 1.0 / plant.magnitude(wc);

    match kind {
        ControllerKind::P => PidGains { kp: m * phi.cos(), ..PidGains::default() },
        ControllerKind::Pi => PidGains {
            kp: m * phi.cos(),
            ki: -m * wc * phi.sin(),
            kd: 0.0,
        },
        ControllerKind::Pd => PidGains {
            kp: m * phi.cos(),
            ki: 0.0,
            kd: m * phi.sin() / wc,
        },
        ControllerKind::Pid => {
            // Ti = 4·Td coupling: Td·ωc = (tanφ + secφ)/2 (positive root of
            // 4x² − 4x·tanφ − 1 = 0).
            let x = (phi.tan() + 1.0 / phi.cos()) / 2.0;
            let td = x / wc;
            let ti = 4.0 * td;
            let kp = m * phi.cos();
            PidGains { kp, ki: kp / ti, kd: kp * td }
        }
    }
}

/// Finds the frequency where the plant phase equals `target` (< 0) by
/// bisection; the phase is monotone decreasing in ω.
fn solve_phase(plant: &FopdtPlant, target: f64) -> f64 {
    let mut lo = 1e-12 / plant.time_constant.max(plant.delay.max(1e-12));
    let mut hi = lo;
    while plant.phase(hi) > target {
        hi *= 2.0;
        assert!(hi.is_finite(), "phase target unreachable");
        if plant.delay == 0.0 && target <= -std::f64::consts::FRAC_PI_2 && hi > 1e30 {
            panic!("phase target {target} unreachable for delay-free first-order plant");
        }
    }
    for _ in 0..200 {
        let mid = (lo * hi).sqrt();
        if plant.phase(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

/// Classical Ziegler-Nichols open-loop (reaction curve) tuning, as an
/// ablation baseline for the phase-constant designs.
///
/// # Panics
///
/// Panics if the plant delay is not positive (ZN open-loop tuning divides
/// by it) or `kind` is [`ControllerKind::Pd`] (not covered by ZN tables).
pub fn ziegler_nichols(plant: &FopdtPlant, kind: ControllerKind) -> PidGains {
    assert!(plant.delay > 0.0, "ZN open-loop tuning requires dead time");
    let a = plant.gain * plant.delay / plant.time_constant;
    match kind {
        ControllerKind::P => PidGains { kp: 1.0 / a, ..PidGains::default() },
        ControllerKind::Pi => {
            let kp = 0.9 / a;
            PidGains { kp, ki: kp / (plant.delay / 0.3), kd: 0.0 }
        }
        ControllerKind::Pid => {
            let kp = 1.2 / a;
            PidGains { kp, ki: kp / (2.0 * plant.delay), kd: kp * 0.5 * plant.delay }
        }
        ControllerKind::Pd => panic!("ZN tables do not define PD tuning"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::{margins, routh_hurwitz};

    fn paper_plant() -> FopdtPlant {
        // Thermal-R-scale gain, longest block tau, half of the 667 ns
        // sampling period.
        FopdtPlant { gain: 2.0, time_constant: 84e-6, delay: 333e-9 }
    }

    #[test]
    fn designed_loops_hit_the_phase_margin() {
        let plant = paper_plant();
        for kind in [ControllerKind::P, ControllerKind::Pi, ControllerKind::Pid, ControllerKind::Pd]
        {
            let gains = design_controller(&plant, kind);
            let ol = gains.transfer_function().series(&plant.transfer_function());
            let m = margins(&ol, 1.0, 1e10);
            let pm = m.phase_margin.to_degrees();
            assert!(
                (pm - 60.0).abs() < 3.0,
                "{kind:?}: phase margin {pm} should be ~60°"
            );
            // PD pushes its crossover near the -180° frequency by design
            // (+45° of lead); its gain margin is structurally thinner.
            let gm_floor = if kind == ControllerKind::Pd { 1.2 } else { 1.5 };
            assert!(m.gain_margin > gm_floor, "{kind:?}: gain margin {}", m.gain_margin);
        }
    }

    #[test]
    fn designed_loops_are_routh_stable() {
        let plant = paper_plant();
        for kind in [ControllerKind::P, ControllerKind::Pi, ControllerKind::Pid] {
            let gains = design_controller(&plant, kind);
            let ol = gains.transfer_function().series(&plant.transfer_function());
            let cp = ol.pade1().characteristic_polynomial();
            assert!(routh_hurwitz(&cp).is_stable(), "{kind:?} gains {gains:?}");
        }
    }

    #[test]
    fn integral_present_exactly_when_expected() {
        let plant = paper_plant();
        assert_eq!(design_controller(&plant, ControllerKind::P).kind(), ControllerKind::P);
        assert_eq!(design_controller(&plant, ControllerKind::Pi).kind(), ControllerKind::Pi);
        assert_eq!(design_controller(&plant, ControllerKind::Pd).kind(), ControllerKind::Pd);
        assert_eq!(design_controller(&plant, ControllerKind::Pid).kind(), ControllerKind::Pid);
    }

    #[test]
    fn pid_coupling_is_ti_equals_4td() {
        let gains = design_controller(&paper_plant(), ControllerKind::Pid);
        let ti = gains.kp / gains.ki;
        let td = gains.kd / gains.kp;
        assert!((ti - 4.0 * td).abs() / ti < 1e-9);
    }

    #[test]
    fn smaller_delay_allows_higher_gain() {
        let slow = FopdtPlant { delay: 1e-6, ..paper_plant() };
        let fast = FopdtPlant { delay: 1e-7, ..paper_plant() };
        let ks = design_controller(&slow, ControllerKind::Pi).kp;
        let kf = design_controller(&fast, ControllerKind::Pi).kp;
        assert!(kf > ks, "shorter dead time should permit more gain ({kf} vs {ks})");
    }

    #[test]
    fn ziegler_nichols_is_stable_for_thermal_plants() {
        // ZN is aggressive (quarter-amplitude damping) but must at least be
        // stable for a plant with tau >> L.
        let plant = paper_plant();
        for kind in [ControllerKind::P, ControllerKind::Pi, ControllerKind::Pid] {
            let gains = ziegler_nichols(&plant, kind);
            let ol = gains.transfer_function().series(&plant.transfer_function());
            let cp = ol.pade1().characteristic_polynomial();
            assert!(routh_hurwitz(&cp).is_stable(), "{kind:?} {gains:?}");
        }
    }

    #[test]
    fn phase_constant_defaults_match_reconstruction() {
        assert_eq!(ControllerKind::Pid.phase_constant(), 0.0);
        assert!(ControllerKind::Pi.phase_constant() < 0.0);
        assert!(ControllerKind::Pd.phase_constant() > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive K")]
    fn rejects_bad_plant() {
        let plant = FopdtPlant { gain: -1.0, time_constant: 1.0, delay: 0.1 };
        let _ = design_controller(&plant, ControllerKind::Pi);
    }
}
