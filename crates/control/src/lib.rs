//! # tdtm-control — feedback-control machinery for DTM
//!
//! Implements the control-theoretic half of the paper (Section 3): the
//! PID-family controller that drives fetch toggling, and the Laplace-domain
//! design methodology used to pick its gains against a first-order-plus-
//! dead-time model of a block's thermal dynamics.
//!
//! * [`complex`], [`poly`] — small numeric substrate (no external deps);
//! * [`tf`] — transfer functions `num(s)/den(s)·e^{-sL}` with frequency
//!   response, series composition, and unity feedback closure;
//! * [`stability`] — Routh-Hurwitz criterion and gain/phase margins;
//! * [`design`] — the paper's plant model (thermal R as DC gain, the
//!   longest block RC as the time constant, half the sampling period as the
//!   loop delay) and phase-constant loop-shaping of P/PD/PI/PID gains;
//! * [`pid`] — the discrete controller with the paper's anti-windup rules
//!   (integrator freeze while the actuator saturates; the integral is kept
//!   non-negative);
//! * [`response`] — closed-loop time-domain simulation used to validate
//!   designs (settling time, overshoot).
//!
//! # Examples
//!
//! Design a PID controller for a thermal block and check the closed loop
//! settles without sustained oscillation:
//!
//! ```
//! use tdtm_control::design::{ControllerKind, FopdtPlant, design_controller};
//! use tdtm_control::response::{simulate_step, ResponseMetrics};
//!
//! // 2 K/W block with an 84 us time constant, 333 ns loop delay.
//! let plant = FopdtPlant { gain: 2.0, time_constant: 84e-6, delay: 333e-9 };
//! let gains = design_controller(&plant, ControllerKind::Pid);
//! let metrics = ResponseMetrics::from_response(&simulate_step(&plant, &gains, 1.0, 0.02));
//! assert!(metrics.overshoot_fraction < 0.40);
//! assert!(metrics.settled);
//! ```

pub mod complex;
pub mod design;
pub mod discrete;
pub mod pid;
pub mod poly;
pub mod response;
pub mod roots;
pub mod stability;
pub mod tf;

pub use complex::Complex;
pub use design::{ControllerKind, FopdtPlant, PidGains};
pub use pid::{PidController, PidSample};
pub use poly::Polynomial;
pub use tf::TransferFunction;
