//! Polynomial root finding (Durand-Kerner) and pole analysis.
//!
//! Routh-Hurwitz answers *whether* a characteristic polynomial is stable;
//! the roots say *how* stable: dominant pole location sets the settling
//! rate, and the damping ratio of the dominant complex pair predicts the
//! overshoot the paper's setpoint-placement argument depends on.

use crate::complex::Complex;
use crate::poly::Polynomial;

/// All complex roots of `p`, found with the Durand-Kerner (Weierstrass)
/// simultaneous iteration.
///
/// Returns `None` if the iteration fails to converge (rare for the
/// well-conditioned characteristic polynomials this crate produces).
///
/// # Panics
///
/// Panics on the zero polynomial.
pub fn roots(p: &Polynomial) -> Option<Vec<Complex>> {
    assert!(!p.is_zero(), "zero polynomial has no defined roots");
    let n = p.degree().expect("nonzero");
    if n == 0 {
        return Some(Vec::new());
    }
    // Balance the polynomial with the substitution s = σ·x, choosing σ so
    // the constant and leading coefficients match in magnitude — thermal
    // characteristic polynomials mix ~1e-14 and ~1e6 coefficients, which
    // defeats the iteration in raw form. Roots are rescaled afterwards.
    let raw = p.coeffs();
    let sigma = if raw[0] != 0.0 {
        (raw[0].abs() / raw[n].abs()).powf(1.0 / n as f64)
    } else {
        1.0
    };
    let scaled: Vec<f64> = raw
        .iter()
        .enumerate()
        .map(|(k, &c)| c * sigma.powi(k as i32))
        .collect();
    // Monic coefficients.
    let lead = *scaled.last().expect("nonzero");
    let coeffs: Vec<f64> = scaled.iter().map(|c| c / lead).collect();
    let poly_eval = |z: Complex| -> Complex {
        coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * z + Complex::from(c))
    };

    // Initial guesses on a non-real circle (the classic (0.4+0.9j)^k).
    let seed = Complex::new(0.4, 0.9);
    let mut zs: Vec<Complex> = Vec::with_capacity(n);
    let mut acc = Complex::ONE;
    for _ in 0..n {
        acc = acc * seed;
        zs.push(acc);
    }
    // Scale guesses by a root bound to help big/small roots.
    let bound = 1.0
        + coeffs[..n]
            .iter()
            .fold(0.0f64, |m, &c| m.max(c.abs()));
    for z in &mut zs {
        *z = *z * bound;
    }

    for _ in 0..500 {
        let mut worst = 0.0f64;
        for i in 0..n {
            let zi = zs[i];
            let mut denom = Complex::ONE;
            for (j, &zj) in zs.iter().enumerate() {
                if j != i {
                    denom = denom * (zi - zj);
                }
            }
            if denom.abs() == 0.0 {
                // Perturb coincident iterates.
                zs[i] = zi + Complex::new(1e-6, 1e-6);
                worst = f64::INFINITY;
                continue;
            }
            let delta = poly_eval(zi) / denom;
            zs[i] = zi - delta;
            worst = worst.max(delta.abs());
        }
        if worst < 1e-12 * bound {
            return Some(zs.into_iter().map(|z| z * sigma).collect());
        }
    }
    // Accept looser convergence before giving up.
    let residual_ok = zs.iter().all(|&z| poly_eval(z).abs() < 1e-6 * bound.max(1.0));
    if residual_ok {
        Some(zs.into_iter().map(|z| z * sigma).collect())
    } else {
        None
    }
}

/// Summary of a stable system's dominant dynamics.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DominantPole {
    /// The dominant (slowest-decaying) pole.
    pub pole: Complex,
    /// Damping ratio ζ of the dominant pole (1 for real poles).
    pub damping: f64,
    /// `4/|Re|`: the classical 2%-settling-time estimate, seconds.
    pub settling_time_estimate: f64,
}

/// Analyzes the dominant pole of a characteristic polynomial.
///
/// Returns `None` if root finding fails or any pole lies in the right
/// half-plane (unstable systems have no settling time).
pub fn dominant_pole(p: &Polynomial) -> Option<DominantPole> {
    let rs = roots(p)?;
    if rs.is_empty() || rs.iter().any(|r| r.re >= 0.0) {
        return None;
    }
    let pole = rs
        .iter()
        .copied()
        .max_by(|a, b| a.re.total_cmp(&b.re))
        .expect("nonempty");
    let damping = if pole.im.abs() < 1e-12 * pole.abs().max(1.0) {
        1.0
    } else {
        -pole.re / pole.abs()
    };
    Some(DominantPole { pole, damping, settling_time_estimate: 4.0 / (-pole.re) })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real_parts(p: &Polynomial) -> Vec<f64> {
        let mut re: Vec<f64> = roots(p).expect("converges").iter().map(|z| z.re).collect();
        re.sort_by(f64::total_cmp);
        re
    }

    #[test]
    fn finds_real_roots() {
        // (s+1)(s+2)(s+5) = s³ + 8s² + 17s + 10
        let p = Polynomial::new(vec![10.0, 17.0, 8.0, 1.0]);
        let re = sorted_real_parts(&p);
        assert!((re[0] + 5.0).abs() < 1e-8);
        assert!((re[1] + 2.0).abs() < 1e-8);
        assert!((re[2] + 1.0).abs() < 1e-8);
    }

    #[test]
    fn finds_complex_pairs() {
        // (s² + 2s + 5): roots -1 ± 2j.
        let p = Polynomial::new(vec![5.0, 2.0, 1.0]);
        let rs = roots(&p).expect("converges");
        assert_eq!(rs.len(), 2);
        for r in rs {
            assert!((r.re + 1.0).abs() < 1e-8);
            assert!((r.im.abs() - 2.0).abs() < 1e-8);
        }
    }

    #[test]
    fn roots_reconstruct_the_polynomial() {
        let p = Polynomial::new(vec![3.0, -7.0, 0.5, 2.0, 1.0]);
        let rs = roots(&p).expect("converges");
        // Π(s - r_i) evaluated at a probe point equals p(probe)/lead.
        let probe = Complex::new(0.7, -1.3);
        let lead = *p.coeffs().last().unwrap();
        let product = rs
            .iter()
            .fold(Complex::ONE, |acc, &r| acc * (probe - r));
        let direct = p.eval_complex(probe);
        assert!((product * lead - direct).abs() < 1e-6);
    }

    #[test]
    fn dominant_pole_of_second_order_system() {
        // s² + 2ζω s + ω²  with ζ=0.5, ω=10.
        let (zeta, w) = (0.5, 10.0);
        let p = Polynomial::new(vec![w * w, 2.0 * zeta * w, 1.0]);
        let d = dominant_pole(&p).expect("stable");
        assert!((d.damping - zeta).abs() < 1e-8, "damping {}", d.damping);
        assert!((d.settling_time_estimate - 4.0 / (zeta * w)).abs() < 1e-6);
    }

    #[test]
    fn unstable_polynomials_have_no_dominant_pole() {
        // (s-1)(s+2)
        let p = Polynomial::new(vec![-2.0, 1.0, 1.0]);
        assert!(dominant_pole(&p).is_none());
    }

    #[test]
    fn agrees_with_routh_hurwitz() {
        use crate::stability::routh_hurwitz;
        for coeffs in [
            vec![10.0, 17.0, 8.0, 1.0],       // stable
            vec![-2.0, 1.0, 1.0],             // one RHP root
            vec![10.0, 1.0, 1.0, 1.0],        // complex RHP pair
            vec![1.0, 2.0, 3.0, 2.0, 1.0],    // stable quartic
        ] {
            let p = Polynomial::new(coeffs);
            let rh = routh_hurwitz(&p);
            let rs = roots(&p).expect("converges");
            let rhp = rs.iter().filter(|r| r.re > 1e-9).count();
            assert_eq!(rh.rhp_roots, rhp, "poly {p}");
        }
    }

    #[test]
    fn designed_pid_loop_is_well_damped() {
        use crate::design::{design_controller, ControllerKind, FopdtPlant};
        let plant = FopdtPlant { gain: 8.0, time_constant: 8.4e-5, delay: 333e-9 };
        let gains = design_controller(&plant, ControllerKind::Pid);
        let cp = gains
            .transfer_function()
            .series(&plant.transfer_function())
            .pade1()
            .characteristic_polynomial();
        let d = dominant_pole(&cp).expect("stable design");
        assert!(d.damping > 0.3, "dominant damping {} too oscillatory", d.damping);
        assert!(
            d.settling_time_estimate < plant.time_constant,
            "closed loop settles faster than the open-loop tau"
        );
    }
}
