//! Real polynomials in one variable (ascending coefficient order).

use crate::complex::Complex;
use std::fmt;
use std::ops::{Add, Mul};

/// A polynomial `c[0] + c[1]·s + c[2]·s² + …` over `f64`.
///
/// The zero polynomial is represented by an empty coefficient vector;
/// construction trims trailing zero coefficients so `degree` is meaningful.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending coefficients, trimming trailing
    /// zeros.
    pub fn new(coeffs: impl Into<Vec<f64>>) -> Polynomial {
        let mut coeffs = coeffs.into();
        while coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        Polynomial { coeffs }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Polynomial {
        Polynomial::new(vec![c])
    }

    /// The monomial `s`.
    pub fn s() -> Polynomial {
        Polynomial::new(vec![0.0, 1.0])
    }

    /// Ascending coefficients (empty for the zero polynomial).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates at a real point (Horner).
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates at a complex point (Horner).
    pub fn eval_complex(&self, s: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * s + Complex::from(c))
    }

    /// The derivative polynomial.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::default();
        }
        Polynomial::new(
            self.coeffs[1..]
                .iter()
                .enumerate()
                .map(|(i, &c)| c * (i + 1) as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Multiplies by `s^n` (shifts coefficients up).
    pub fn shift(&self, n: usize) -> Polynomial {
        if self.is_zero() {
            return Polynomial::default();
        }
        let mut coeffs = vec![0.0; n];
        coeffs.extend_from_slice(&self.coeffs);
        Polynomial::new(coeffs)
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, o: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(o.coeffs.len());
        let mut out = vec![0.0; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            out[i] += c;
        }
        for (i, &c) in o.coeffs.iter().enumerate() {
            out[i] += c;
        }
        Polynomial::new(out)
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, o: &Polynomial) -> Polynomial {
        if self.is_zero() || o.is_zero() {
            return Polynomial::default();
        }
        let mut out = vec![0.0; self.coeffs.len() + o.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in o.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Polynomial::new(out)
    }
}

impl Mul<f64> for &Polynomial {
    type Output = Polynomial;
    fn mul(self, k: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&c| c * k).collect::<Vec<_>>())
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 {
                continue;
            }
            if !first {
                f.write_str(if c < 0.0 { " - " } else { " + " })?;
            } else if c < 0.0 {
                f.write_str("-")?;
            }
            let a = c.abs();
            match i {
                0 => write!(f, "{a}")?,
                1 => {
                    if a == 1.0 {
                        f.write_str("s")?;
                    } else {
                        write!(f, "{a}·s")?;
                    }
                }
                _ => {
                    if a == 1.0 {
                        write!(f, "s^{i}")?;
                    } else {
                        write!(f, "{a}·s^{i}")?;
                    }
                }
            }
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_trims_trailing_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(Polynomial::new(vec![0.0]).degree(), None);
    }

    #[test]
    fn evaluation_horner() {
        let p = Polynomial::new(vec![1.0, -3.0, 2.0]); // 1 - 3s + 2s²
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(2.0), 3.0);
        let z = p.eval_complex(Complex::jw(1.0)); // 1 - 3j - 2 = -1 - 3j
        assert!((z - Complex::new(-1.0, -3.0)).abs() < 1e-15);
    }

    #[test]
    fn multiplication_and_addition() {
        let a = Polynomial::new(vec![1.0, 1.0]); // 1 + s
        let b = Polynomial::new(vec![-1.0, 1.0]); // -1 + s
        assert_eq!(&a * &b, Polynomial::new(vec![-1.0, 0.0, 1.0])); // s² - 1
        assert_eq!(&a + &b, Polynomial::new(vec![0.0, 2.0]));
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::new(vec![5.0, 0.0, 3.0, 1.0]); // 5 + 3s² + s³
        assert_eq!(p.derivative(), Polynomial::new(vec![0.0, 6.0, 3.0]));
        assert!(Polynomial::constant(7.0).derivative().is_zero());
    }

    #[test]
    fn shift_multiplies_by_s_power() {
        let p = Polynomial::new(vec![2.0, 1.0]);
        assert_eq!(p.shift(2), Polynomial::new(vec![0.0, 0.0, 2.0, 1.0]));
        assert_eq!(&p.shift(1), &(&p * &Polynomial::s()));
    }

    #[test]
    fn display_is_readable() {
        let p = Polynomial::new(vec![-1.0, 0.0, 2.0]);
        assert_eq!(p.to_string(), "2·s^2 - 1");
        assert_eq!(Polynomial::default().to_string(), "0");
    }
}
