//! The discrete PID controller that runs in the DTM loop.
//!
//! Every sampling interval (1000 cycles in the paper) the controller
//! receives the current error `e = T_target − T_measured` and produces an
//! actuator command, which the DTM layer maps onto the fetch-toggling duty
//! cycle. The output is clamped to the actuator range, and two anti-windup
//! measures from the paper's Section 3.3 are applied:
//!
//! 1. **Integrator freeze on saturation** ("integral windup can be easily
//!    avoided by freezing the integrator when controller output saturates
//!    the actuator") — implemented as integral clamping: `Ki·∫e` is held
//!    inside the actuator range, so saturation never accumulates excess
//!    integral, and the controller "immediately decrease\[s\] below
//!    saturation" once the error changes sign.
//! 2. **Non-negative integral** ("we implemented this mechanism in our PI
//!    and PID controllers by preventing the integral from taking on a
//!    negative value").

use crate::design::PidGains;

/// A discrete PID controller with output clamping and anti-windup.
#[derive(Clone, Debug)]
pub struct PidController {
    gains: PidGains,
    /// Sampling period in seconds.
    period: f64,
    /// Actuator range.
    out_min: f64,
    out_max: f64,
    /// Accumulated integral `∫e dt` (before multiplication by Ki).
    integral: f64,
    prev_error: Option<f64>,
    /// Anti-windup enable (on by default; off for the windup ablation).
    anti_windup: bool,
    /// Clamp the integral at zero from below (the paper's rule).
    nonnegative_integral: bool,
}

impl PidController {
    /// Creates a controller sampling every `period` seconds with actuator
    /// range `[out_min, out_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive or the range is empty.
    pub fn new(gains: PidGains, period: f64, out_min: f64, out_max: f64) -> PidController {
        assert!(period > 0.0, "sampling period must be positive");
        assert!(out_min < out_max, "actuator range must be nonempty");
        PidController {
            gains,
            period,
            out_min,
            out_max,
            integral: 0.0,
            prev_error: None,
            anti_windup: true,
            nonnegative_integral: true,
        }
    }

    /// Disables both anti-windup measures (for the windup ablation, which
    /// reproduces the failure mode Section 3.3 describes).
    pub fn without_anti_windup(mut self) -> PidController {
        self.anti_windup = false;
        self.nonnegative_integral = false;
        self
    }

    /// The configured gains.
    pub fn gains(&self) -> PidGains {
        self.gains
    }

    /// The sampling period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Current integral state (∫e dt), exposed for tests and tracing.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Resets dynamic state (integral and derivative history).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }

    /// Consumes one error sample and produces the clamped actuator command.
    ///
    /// Anti-windup is implemented as integral clamping: the integral term
    /// `Ki·∫e` is never allowed outside the actuator range, which is
    /// exactly the effect of freezing the integrator once the actuator
    /// saturates, while letting it unwind instantly when the error changes
    /// sign (the behavior Section 3.3 asks for).
    pub fn sample(&mut self, error: f64) -> f64 {
        self.sample_detailed(error).output
    }

    /// Like [`sample`](Self::sample), but also reports the internal terms
    /// of this step for telemetry. `sample` is a thin wrapper around this
    /// method, so the observed and unobserved paths execute the same
    /// floating-point operations in the same order — observing a
    /// controller can never change its output.
    pub fn sample_detailed(&mut self, error: f64) -> PidSample {
        let derivative = match self.prev_error {
            Some(prev) => (error - prev) / self.period,
            None => 0.0,
        };
        self.prev_error = Some(error);

        self.integral += error * self.period;
        let integral_pre_clamp = self.integral;
        if self.anti_windup && self.gains.ki > 0.0 {
            let i_max = self.out_max / self.gains.ki;
            let i_min = self.out_min / self.gains.ki;
            self.integral = self.integral.clamp(i_min, i_max);
        }
        if self.nonnegative_integral && self.integral < 0.0 {
            self.integral = 0.0;
        }

        let p_term = self.gains.kp * error;
        let i_term = self.gains.ki * self.integral;
        let d_term = self.gains.kd * derivative;
        // `+` is left-associative, so this sum is bit-identical to the
        // former single-expression `p + i + d`.
        let raw = p_term + i_term + d_term;
        let output = raw.clamp(self.out_min, self.out_max);
        PidSample {
            error,
            p_term,
            i_term,
            d_term,
            integral_pre_clamp,
            integral: self.integral,
            output,
            saturated: raw < self.out_min || raw > self.out_max,
        }
    }
}

/// The internal terms of one PID step, as reported by
/// [`PidController::sample_detailed`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PidSample {
    /// The error input `T_target − T_measured`.
    pub error: f64,
    /// Proportional term `Kp·e`.
    pub p_term: f64,
    /// Integral term `Ki·∫e` (after anti-windup clamping).
    pub i_term: f64,
    /// Derivative term `Kd·de/dt`.
    pub d_term: f64,
    /// Integral `∫e` before anti-windup clamping was applied.
    pub integral_pre_clamp: f64,
    /// Integral `∫e` after clamping — the state carried forward.
    pub integral: f64,
    /// Actuator command after clamping to the actuator range.
    pub output: f64,
    /// Whether the raw `P+I+D` sum fell outside the actuator range.
    pub saturated: bool,
}

/// Quantizes a continuous actuator command in `[0, 1]` to one of
/// `levels + 1` evenly spaced settings (the paper's actuator exposes
/// "eight discrete values distributed evenly across the range from 0% to
/// 100%").
///
/// # Panics
///
/// Panics if `levels` is zero.
pub fn quantize(command: f64, levels: u32) -> f64 {
    assert!(levels > 0, "need at least one level");
    let clamped = command.clamp(0.0, 1.0);
    (clamped * levels as f64).round() / levels as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gains() -> PidGains {
        PidGains { kp: 2.0, ki: 10.0, kd: 0.01 }
    }

    #[test]
    fn proportional_action_direction() {
        let mut c = PidController::new(PidGains { kp: 3.0, ..PidGains::default() }, 0.1, -10.0, 10.0);
        assert_eq!(c.sample(2.0), 6.0);
        assert_eq!(c.sample(-1.0), -3.0);
    }

    #[test]
    fn integral_accumulates_to_remove_steady_error() {
        let mut c = PidController::new(PidGains { ki: 1.0, ..PidGains::default() }, 0.5, -10.0, 10.0);
        let o1 = c.sample(1.0);
        let o2 = c.sample(1.0);
        assert!(o2 > o1, "integral action grows under persistent error");
        assert!((c.integral() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derivative_damps_fast_changes() {
        let mut c = PidController::new(PidGains { kd: 1.0, ..PidGains::default() }, 0.1, -100.0, 100.0);
        c.sample(0.0);
        let o = c.sample(1.0); // de/dt = 10
        assert!((o - 10.0).abs() < 1e-12);
    }

    #[test]
    fn first_sample_has_no_derivative_kick() {
        let mut c = PidController::new(PidGains { kd: 5.0, ..PidGains::default() }, 0.1, -100.0, 100.0);
        assert_eq!(c.sample(3.0), 0.0);
    }

    #[test]
    fn output_clamped_to_actuator_range() {
        let mut c = PidController::new(gains(), 0.1, 0.0, 1.0);
        assert_eq!(c.sample(100.0), 1.0);
        let mut c2 = PidController::new(gains(), 0.1, 0.0, 1.0);
        // Large negative error: clamp low, and the non-negative integral
        // rule keeps ∫e at zero.
        assert_eq!(c2.sample(-100.0), 0.0);
        assert_eq!(c2.integral(), 0.0);
    }

    #[test]
    fn anti_windup_freezes_integrator_while_saturated() {
        let mut with = PidController::new(PidGains { ki: 1.0, ..PidGains::default() }, 1.0, 0.0, 1.0);
        let mut without =
            PidController::new(PidGains { ki: 1.0, ..PidGains::default() }, 1.0, 0.0, 1.0)
                .without_anti_windup();
        // Long stretch of positive error: both saturate at 1.0, but only
        // the unprotected one accumulates a huge integral.
        for _ in 0..100 {
            assert_eq!(with.sample(5.0), 1.0);
            assert_eq!(without.sample(5.0), 1.0);
        }
        assert!(with.integral() <= 1.0 + 1e-9, "clamped: {}", with.integral());
        assert!(without.integral() > 400.0, "wound up: {}", without.integral());

        // Error flips sign: the protected controller responds immediately;
        // the wound-up one stays saturated ("it will take the integral
        // output a long time to unwind").
        let with_out = with.sample(-2.0);
        let without_out = without.sample(-2.0);
        assert!(with_out < 1.0, "protected controller leaves saturation at once");
        assert_eq!(without_out, 1.0, "unprotected controller is still wound up");
    }

    #[test]
    fn integral_clamp_matches_doc_comment() {
        // The module doc promises two invariants: `Ki·∫e` is held inside
        // the actuator range (rule 1), and ∫e never goes negative
        // (rule 2). Drive the controller through saturation in both
        // directions and check the invariants at every sample.
        let ki = 4.0;
        let (out_min, out_max) = (0.0, 1.0);
        let mut c = PidController::new(
            PidGains { kp: 0.5, ki, kd: 0.0 },
            0.25,
            out_min,
            out_max,
        );
        let drive = |c: &mut PidController, error: f64, n: usize| {
            for _ in 0..n {
                let out = c.sample(error);
                assert!((out_min..=out_max).contains(&out), "output {out} escaped actuator range");
                let i_term = ki * c.integral();
                assert!(
                    i_term >= out_min - 1e-12 && i_term <= out_max + 1e-12,
                    "Ki·∫e = {i_term} escaped the actuator range"
                );
                assert!(c.integral() >= 0.0, "integral went negative: {}", c.integral());
            }
        };
        // Saturate high: the integral must stop at Ki·∫e = out_max.
        drive(&mut c, 3.0, 40);
        assert!((ki * c.integral() - out_max).abs() < 1e-9, "clamped at the rail");
        // One sign flip ends saturation immediately (no unwinding tail).
        assert!(c.sample(-0.5) < out_max, "must leave saturation in one sample");
        // Saturate low: the non-negative rule pins ∫e at zero, not at
        // Ki·∫e = out_min (which would also be zero here) or below.
        drive(&mut c, -3.0, 40);
        assert_eq!(c.integral(), 0.0, "paper rule: integral never negative");
        // Recovery from the low rail is symmetric: positive error acts at once.
        assert!(c.sample(1.0) > out_min, "must leave the low rail in one sample");
    }

    #[test]
    fn integral_never_negative_with_paper_rule() {
        let mut c = PidController::new(PidGains { ki: 1.0, kp: 0.1, ..PidGains::default() }, 1.0, 0.0, 1.0);
        for _ in 0..50 {
            c.sample(-3.0);
            assert!(c.integral() >= 0.0);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut c = PidController::new(gains(), 0.1, 0.0, 1.0);
        c.sample(0.3);
        c.sample(0.1);
        c.reset();
        assert_eq!(c.integral(), 0.0);
        // No derivative kick after reset.
        let out = c.sample(0.0);
        assert_eq!(out, 0.0);
    }

    #[test]
    fn quantize_to_eight_levels() {
        assert_eq!(quantize(0.0, 8), 0.0);
        assert_eq!(quantize(1.0, 8), 1.0);
        assert_eq!(quantize(0.5, 8), 0.5); // toggle2
        assert_eq!(quantize(0.49, 8), 0.5);
        assert_eq!(quantize(0.07, 8), 0.125);
        assert_eq!(quantize(0.05, 8), 0.0);
        assert_eq!(quantize(7.0, 8), 1.0);
        assert_eq!(quantize(-3.0, 8), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_period_rejected() {
        let _ = PidController::new(gains(), 0.0, 0.0, 1.0);
    }

    #[test]
    fn sample_detailed_matches_sample_bitwise() {
        let mut plain = PidController::new(gains(), 0.1, 0.0, 1.0);
        let mut detailed = PidController::new(gains(), 0.1, 0.0, 1.0);
        let errors = [0.3, -0.1, 2.5, -4.0, 0.0, 0.07, 1.2, -0.9];
        for &e in &errors {
            let out = plain.sample(e);
            let s = detailed.sample_detailed(e);
            assert_eq!(out.to_bits(), s.output.to_bits(), "divergence at error {e}");
            assert_eq!(plain.integral().to_bits(), detailed.integral().to_bits());
        }
    }

    #[test]
    fn sample_detailed_reports_terms_and_saturation() {
        let mut c = PidController::new(PidGains { kp: 1.0, ki: 2.0, kd: 0.0 }, 0.5, 0.0, 1.0);
        let s = c.sample_detailed(4.0);
        assert_eq!(s.error, 4.0);
        assert_eq!(s.p_term, 4.0);
        assert!(s.saturated, "raw P+I+D of {} must report saturation", s.p_term + s.i_term);
        assert_eq!(s.output, 1.0);
        // ∫e before clamp is e·dt = 2.0; the anti-windup clamp holds
        // Ki·∫e inside [0, 1], i.e. ∫e ≤ 0.5.
        assert_eq!(s.integral_pre_clamp, 2.0);
        assert_eq!(s.integral, 0.5);
        // A negative error unwinds the integral off the rail at once:
        // ∫e = 0.5 − 0.3·0.5 = 0.35, so raw = −0.3 + 0.7 = 0.4.
        let s2 = c.sample_detailed(-0.3);
        assert!(!s2.saturated);
        assert_eq!(s2.i_term, 2.0 * s2.integral);
    }
}
