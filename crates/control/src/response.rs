//! Closed-loop time-domain simulation for validating controller designs.
//!
//! Simulates the unity-feedback loop of Figure 1 — controller followed by
//! the FOPDT plant — against a setpoint step, and extracts the metrics the
//! paper's methodology cares about: maximum overshoot (used to choose how
//! close the setpoint may sit to the emergency threshold) and settling
//! time.

use crate::design::{FopdtPlant, PidGains};
use crate::pid::{PidController, PidSample};

/// A sampled closed-loop response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Simulation step in seconds.
    pub dt: f64,
    /// Plant output at each step.
    pub output: Vec<f64>,
    /// Setpoint amplitude.
    pub setpoint: f64,
    /// The controller's internal terms at each step (same length as
    /// `output`), so figure generators can plot P/I/D decompositions
    /// without re-deriving controller state.
    pub samples: Vec<PidSample>,
}

/// Summary metrics of a step response.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ResponseMetrics {
    /// Peak overshoot above the setpoint, as a fraction of the step size.
    pub overshoot_fraction: f64,
    /// Time to enter and stay within ±2% of the setpoint (seconds);
    /// `f64::INFINITY` if it never settles.
    pub settling_time: f64,
    /// Whether the response settled within the simulated horizon.
    pub settled: bool,
    /// Final value reached.
    pub final_value: f64,
}

impl ResponseMetrics {
    /// Computes metrics from a simulated response.
    ///
    /// # Panics
    ///
    /// Panics if the response is empty or has a zero setpoint.
    pub fn from_response(r: &Response) -> ResponseMetrics {
        assert!(!r.output.is_empty(), "empty response");
        assert!(r.setpoint != 0.0, "zero setpoint step");
        let peak = r.output.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let overshoot_fraction = ((peak - r.setpoint) / r.setpoint).max(0.0);
        let band = 0.02 * r.setpoint.abs();
        // Last index outside the band determines settling.
        let mut settle_idx = None;
        for (i, &y) in r.output.iter().enumerate().rev() {
            if (y - r.setpoint).abs() > band {
                settle_idx = Some(i + 1);
                break;
            }
        }
        let settle_idx = settle_idx.unwrap_or(0);
        let settled = settle_idx < r.output.len();
        ResponseMetrics {
            overshoot_fraction,
            settling_time: if settled { settle_idx as f64 * r.dt } else { f64::INFINITY },
            settled,
            final_value: *r.output.last().expect("nonempty"),
        }
    }
}

/// Simulates the closed loop against a setpoint step of `setpoint`,
/// for `duration` seconds.
///
/// The plant is integrated with an exact first-order update per simulation
/// step; the dead time is modeled with a delay line on the controller
/// output. The controller runs at the same rate (a conservative stand-in
/// for the much faster-than-τ sampling the paper uses).
///
/// # Panics
///
/// Panics if plant parameters are non-positive.
pub fn simulate_step(
    plant: &FopdtPlant,
    gains: &PidGains,
    setpoint: f64,
    duration: f64,
) -> Response {
    assert!(plant.time_constant > 0.0 && plant.gain > 0.0, "bad plant");
    // Resolve both the time constant and the dead time.
    let dt = (plant.time_constant / 400.0).min(if plant.delay > 0.0 {
        plant.delay / 8.0
    } else {
        f64::INFINITY
    });
    let steps = (duration / dt).ceil() as usize;
    let delay_steps = (plant.delay / dt).round() as usize;
    let mut delay_line = std::collections::VecDeque::from(vec![0.0f64; delay_steps]);

    let mut controller = PidController::new(*gains, dt, -1e12, 1e12);
    let mut y = 0.0f64;
    let decay = (-dt / plant.time_constant).exp();
    let mut output = Vec::with_capacity(steps);
    let mut samples = Vec::with_capacity(steps);
    for _ in 0..steps {
        let s = controller.sample_detailed(setpoint - y);
        let u = s.output;
        samples.push(s);
        delay_line.push_back(u);
        let u_delayed = delay_line.pop_front().unwrap_or(u);
        let y_ss = plant.gain * u_delayed;
        y = y_ss + (y - y_ss) * decay;
        output.push(y);
    }
    Response { dt, output, setpoint, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{design_controller, ControllerKind};

    fn paper_plant() -> FopdtPlant {
        FopdtPlant { gain: 2.0, time_constant: 84e-6, delay: 333e-9 }
    }

    #[test]
    fn pi_and_pid_track_the_setpoint_without_offset() {
        let plant = paper_plant();
        for kind in [ControllerKind::Pi, ControllerKind::Pid] {
            let gains = design_controller(&plant, kind);
            let r = simulate_step(&plant, &gains, 1.0, 0.02);
            let m = ResponseMetrics::from_response(&r);
            assert!(m.settled, "{kind:?} must settle");
            assert!(
                (m.final_value - 1.0).abs() < 0.02,
                "{kind:?}: integral action should remove offset, final {}",
                m.final_value
            );
            assert!(m.overshoot_fraction < 0.40, "{kind:?}: overshoot {}", m.overshoot_fraction);
        }
    }

    #[test]
    fn p_controller_has_steady_state_offset() {
        let plant = paper_plant();
        let gains = design_controller(&plant, ControllerKind::P);
        let r = simulate_step(&plant, &gains, 1.0, 0.01);
        let m = ResponseMetrics::from_response(&r);
        let expect = gains.kp * plant.gain / (1.0 + gains.kp * plant.gain);
        assert!(
            (m.final_value - expect).abs() < 0.03,
            "P loop settles at K·Kp/(1+K·Kp): {} vs {expect}",
            m.final_value
        );
    }

    #[test]
    fn settling_is_fast_relative_to_the_time_constant() {
        // The whole point of feedback: the closed loop responds much faster
        // than the 84 µs open-loop constant.
        let plant = paper_plant();
        let gains = design_controller(&plant, ControllerKind::Pid);
        let r = simulate_step(&plant, &gains, 1.0, 0.02);
        let m = ResponseMetrics::from_response(&r);
        assert!(
            m.settling_time < plant.time_constant,
            "closed-loop settling {} should beat open-loop tau {}",
            m.settling_time,
            plant.time_constant
        );
    }

    #[test]
    fn excessive_gain_oscillates() {
        let plant = paper_plant();
        let mut gains = design_controller(&plant, ControllerKind::Pi);
        // The dead time is tiny next to tau, so the gain margin is large;
        // 1000x is comfortably past it.
        gains.kp *= 1000.0;
        gains.ki *= 1000.0;
        let r = simulate_step(&plant, &gains, 1.0, 0.005);
        let m = ResponseMetrics::from_response(&r);
        assert!(
            !m.settled || m.overshoot_fraction > 0.5,
            "1000x gain should destroy the designed margins: {m:?}"
        );
    }

    #[test]
    fn response_carries_controller_samples() {
        let plant = paper_plant();
        let gains = design_controller(&plant, ControllerKind::Pid);
        let r = simulate_step(&plant, &gains, 1.0, 0.002);
        assert_eq!(r.samples.len(), r.output.len());
        // The first error is the full setpoint step, and each recorded
        // sample's output is the command that drove the plant that step.
        assert_eq!(r.samples[0].error, 1.0);
        assert!(r.samples.iter().all(|s| s.output.is_finite()));
    }

    #[test]
    fn delay_free_plant_is_simulable() {
        let plant = FopdtPlant { gain: 1.0, time_constant: 1e-3, delay: 0.0 };
        let gains = PidGains { kp: 2.0, ki: 500.0, kd: 0.0 };
        let r = simulate_step(&plant, &gains, 2.0, 0.05);
        let m = ResponseMetrics::from_response(&r);
        assert!(m.settled);
        assert!((m.final_value - 2.0).abs() < 0.05);
    }
}
