//! Discrete-time (z-domain) transfer functions and Tustin discretization.
//!
//! The paper designs its controllers in the continuous (Laplace) domain and
//! argues that is valid because the 667 ns sampling period is far below the
//! thermal time constants ("for all practical purposes, the system behaves
//! in a continuous manner"). This module makes that argument checkable: it
//! discretizes the continuous designs with the bilinear (Tustin) transform
//! and verifies — in tests — that the discrete loop matches the continuous
//! one where it matters.

use crate::complex::Complex;
use crate::design::PidGains;
use crate::poly::Polynomial;
use crate::tf::TransferFunction;

/// A discrete transfer function `num(z⁻¹)/den(z⁻¹)` at a fixed sampling
/// period, in negative powers of `z` (direct form):
/// `y[k] = (Σ b_i·u[k-i] − Σ_{i≥1} a_i·y[k-i]) / a_0`.
#[derive(Clone, PartialEq, Debug)]
pub struct DiscreteTransferFunction {
    /// Numerator coefficients `b_0..b_n` (of `z⁻ⁱ`).
    pub num: Vec<f64>,
    /// Denominator coefficients `a_0..a_m` (of `z⁻ⁱ`), `a_0 != 0`.
    pub den: Vec<f64>,
    /// Sampling period in seconds.
    pub period: f64,
}

impl DiscreteTransferFunction {
    /// Creates a discrete transfer function.
    ///
    /// # Panics
    ///
    /// Panics if the denominator is empty or has a zero leading
    /// coefficient, or if `period` is not positive.
    pub fn new(num: Vec<f64>, den: Vec<f64>, period: f64) -> DiscreteTransferFunction {
        assert!(period > 0.0, "period must be positive");
        assert!(den.first().is_some_and(|&a| a != 0.0), "a_0 must be nonzero");
        DiscreteTransferFunction { num, den, period }
    }

    /// Frequency response at `ω` rad/s: evaluate at `z = e^{jωT}`.
    pub fn freq_response(&self, w: f64) -> Complex {
        let zinv = Complex::jw(-w * self.period).exp(); // z⁻¹ = e^{-jωT}
        let eval = |c: &[f64]| {
            let mut acc = Complex::ZERO;
            let mut p = Complex::ONE;
            for &coef in c {
                acc = acc + p * coef;
                p = p * zinv;
            }
            acc
        };
        eval(&self.num) / eval(&self.den)
    }

    /// Runs the difference equation over an input sequence.
    pub fn simulate(&self, input: &[f64]) -> Vec<f64> {
        let mut output = vec![0.0; input.len()];
        for k in 0..input.len() {
            let mut acc = 0.0;
            for (i, &b) in self.num.iter().enumerate() {
                if k >= i {
                    acc += b * input[k - i];
                }
            }
            for (i, &a) in self.den.iter().enumerate().skip(1) {
                if k >= i {
                    acc -= a * output[k - i];
                }
            }
            output[k] = acc / self.den[0];
        }
        output
    }

    /// Whether all poles are inside the unit circle (Jury-style check via
    /// the reflection-coefficient recursion).
    pub fn is_stable(&self) -> bool {
        // Denominator in ascending powers of z⁻¹ == descending powers of
        // z: a_0·z^m + a_1·z^{m-1} + ... Schur-Cohn recursion on that.
        let mut a: Vec<f64> = self.den.clone();
        while a.last() == Some(&0.0) {
            a.pop();
        }
        if a.len() <= 1 {
            return true;
        }
        // Normalize to monic in z (a_0 leading).
        let mut coeffs = a;
        while coeffs.len() > 1 {
            let n = coeffs.len();
            let k = coeffs[n - 1] / coeffs[0];
            if k.abs() >= 1.0 {
                return false;
            }
            let mut next = Vec::with_capacity(n - 1);
            for i in 0..n - 1 {
                next.push(coeffs[i] - k * coeffs[n - 1 - i]);
            }
            coeffs = next;
        }
        true
    }
}

/// Discretizes a delay-free continuous transfer function with the bilinear
/// (Tustin) transform `s = (2/T)·(1 − z⁻¹)/(1 + z⁻¹)`.
///
/// # Panics
///
/// Panics if the transfer function has dead time (approximate it with
/// [`TransferFunction::pade1`] first) or `period` is not positive.
pub fn tustin(tf: &TransferFunction, period: f64) -> DiscreteTransferFunction {
    assert!(tf.delay == 0.0, "discretize the Padé approximation of a dead-time system");
    assert!(period > 0.0, "period must be positive");
    // Substitute s = c·(1−z⁻¹)/(1+z⁻¹), c = 2/T, and clear denominators:
    // for a polynomial p(s) of degree n, p -> Σ p_i cⁱ (1−z⁻¹)ⁱ (1+z⁻¹)^{n−i}.
    let n = tf.num.degree().unwrap_or(0).max(tf.den.degree().unwrap_or(0));
    let c = 2.0 / period;
    let expand = |p: &Polynomial| -> Vec<f64> {
        let mut acc = vec![0.0; n + 1];
        let one_minus = [1.0, -1.0];
        let one_plus = [1.0, 1.0];
        for (i, &coef) in p.coeffs().iter().enumerate() {
            // term = coef · cⁱ · (1−z⁻¹)ⁱ · (1+z⁻¹)^{n−i}
            let mut poly = vec![coef * c.powi(i as i32)];
            for _ in 0..i {
                poly = conv(&poly, &one_minus);
            }
            for _ in 0..(n - i) {
                poly = conv(&poly, &one_plus);
            }
            for (k, v) in poly.into_iter().enumerate() {
                acc[k] += v;
            }
        }
        acc
    };
    DiscreteTransferFunction::new(expand(&tf.num), expand(&tf.den), period)
}

/// Discretizes PID gains directly (trapezoidal integral, backward-difference
/// derivative — the textbook "velocity form" coefficients).
pub fn discretize_pid(gains: &PidGains, period: f64) -> DiscreteTransferFunction {
    let (kp, ki, kd, t) = (gains.kp, gains.ki, gains.kd, period);
    // u[k] = u[k-1] + b0·e[k] + b1·e[k-1] + b2·e[k-2]
    let b0 = kp + ki * t / 2.0 + kd / t;
    let b1 = -kp + ki * t / 2.0 - 2.0 * kd / t;
    let b2 = kd / t;
    DiscreteTransferFunction::new(vec![b0, b1, b2], vec![1.0, -1.0], period)
}

fn conv(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{design_controller, ControllerKind, FopdtPlant};

    #[test]
    fn tustin_matches_continuous_response_below_nyquist() {
        let tf = TransferFunction::first_order(2.0, 1e-3, 0.0);
        let period = 1e-5;
        let d = tustin(&tf, period);
        for w in [10.0, 100.0, 1000.0, 10_000.0] {
            let c = tf.freq_response(w);
            let z = d.freq_response(w);
            assert!(
                (c - z).abs() < 0.02 * c.abs().max(0.01),
                "w={w}: continuous {c} vs discrete {z}"
            );
        }
    }

    #[test]
    fn tustin_preserves_dc_gain() {
        let tf = TransferFunction::first_order(3.5, 0.2, 0.0);
        let d = tustin(&tf, 1e-3);
        let dc = d.freq_response(1e-6).abs();
        assert!((dc - 3.5).abs() < 1e-6, "dc {dc}");
    }

    #[test]
    fn discrete_first_order_step_response_matches_analytic() {
        let (k, tau) = (2.0, 1e-3);
        let tf = TransferFunction::first_order(k, tau, 0.0);
        let period = 1e-5;
        let d = tustin(&tf, period);
        let steps = 400;
        let out = d.simulate(&vec![1.0; steps]);
        for (i, &y) in out.iter().enumerate().skip(5) {
            let t = (i as f64 + 0.5) * period;
            let expect = k * (1.0 - (-t / tau).exp());
            assert!((y - expect).abs() < 0.01, "t={t}: {y} vs {expect}");
        }
    }

    #[test]
    fn stability_check_flags_unit_circle() {
        // y[k] = 0.5 y[k-1] + u: stable.
        let stable = DiscreteTransferFunction::new(vec![1.0], vec![1.0, -0.5], 1.0);
        assert!(stable.is_stable());
        // y[k] = 1.5 y[k-1] + u: unstable.
        let unstable = DiscreteTransferFunction::new(vec![1.0], vec![1.0, -1.5], 1.0);
        assert!(!unstable.is_stable());
        // Integrator (pole at 1): marginal, reported unstable.
        let integrator = DiscreteTransferFunction::new(vec![1.0], vec![1.0, -1.0], 1.0);
        assert!(!integrator.is_stable());
    }

    #[test]
    fn discretized_design_tracks_continuous_pid() {
        // The paper's argument: at 667 ns sampling the discrete controller
        // is indistinguishable from the continuous design.
        let plant = FopdtPlant { gain: 8.0, time_constant: 8.4e-5, delay: 333e-9 };
        let gains = design_controller(&plant, ControllerKind::Pid);
        let period = 667e-9;
        let d = discretize_pid(&gains, period);
        let c = gains.transfer_function();
        // Compare frequency responses across the loop's active band: tight
        // agreement well below Nyquist (π/T ≈ 4.7e6 rad/s), and still
        // within ~10% approaching the crossover region where the
        // backward-difference derivative starts to bend.
        for (w, tol) in [(1e3, 0.02), (1e4, 0.02), (1e5, 0.02), (1e6, 0.12)] {
            let fc = c.freq_response(w);
            let fd = d.freq_response(w);
            let err = (fc - fd).abs() / fc.abs();
            assert!(err < tol, "w={w}: relative error {err}");
        }
    }

    #[test]
    fn closed_loop_discrete_pid_is_stable_at_paper_sampling() {
        let plant = FopdtPlant { gain: 8.0, time_constant: 8.4e-5, delay: 333e-9 };
        let gains = design_controller(&plant, ControllerKind::Pid);
        let period = 667e-9;
        // Discretize the whole open loop (plant via Padé+Tustin, PID
        // directly), close it, and Jury-test the characteristic poly.
        let plant_d = tustin(&plant.transfer_function().pade1(), period);
        let pid_d = discretize_pid(&gains, period);
        // Closed-loop denominator: den_c·den_p + num_c·num_p (in z⁻¹).
        let num = conv(&pid_d.num, &plant_d.num);
        let den = {
            let a = conv(&pid_d.den, &plant_d.den);
            let mut d = a.clone();
            for (i, &v) in num.iter().enumerate() {
                if i < d.len() {
                    d[i] += v;
                } else {
                    d.push(v);
                }
            }
            d
        };
        let closed = DiscreteTransferFunction::new(num, den, period);
        assert!(closed.is_stable(), "the paper's continuous design survives discretization");
    }
}
