//! Stability analysis: the Routh-Hurwitz criterion and frequency-domain
//! gain/phase margins.
//!
//! The paper tunes its PID weights "according to stability analysis to
//! ensure that the system will not oscillate"; these are the tools that
//! back [`crate::design`]'s choices, and the tests here re-verify the
//! shipped designs.

use crate::poly::Polynomial;
use crate::tf::TransferFunction;

/// Result of a Routh-Hurwitz analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RouthResult {
    /// Number of characteristic-polynomial roots in the right half plane.
    pub rhp_roots: usize,
    /// Whether a marginal case (a zero in the first column) was perturbed.
    pub marginal: bool,
}

impl RouthResult {
    /// Whether the polynomial is strictly Hurwitz (all roots in the open
    /// left half plane and no marginal perturbation was needed).
    pub fn is_stable(&self) -> bool {
        self.rhp_roots == 0 && !self.marginal
    }
}

/// Applies the Routh-Hurwitz criterion to a polynomial.
///
/// Returns the number of right-half-plane roots (sign changes in the first
/// column of the Routh array). Zero first-column entries are perturbed with
/// the standard epsilon method and flagged as `marginal`.
///
/// # Panics
///
/// Panics on the zero polynomial.
pub fn routh_hurwitz(p: &Polynomial) -> RouthResult {
    assert!(!p.is_zero(), "zero polynomial has no stability classification");
    let n = p.degree().expect("nonzero");
    // Normalize sign so the leading coefficient is positive.
    let coeffs: Vec<f64> = {
        let lead = *p.coeffs().last().expect("nonzero");
        p.coeffs().iter().map(|&c| c * lead.signum()).collect()
    };
    if n == 0 {
        return RouthResult { rhp_roots: 0, marginal: false };
    }

    // Rows are built from highest degree downward.
    let width = n / 2 + 1;
    let mut row0: Vec<f64> = Vec::with_capacity(width);
    let mut row1: Vec<f64> = Vec::with_capacity(width);
    let mut k = n as isize;
    while k >= 0 {
        let c = coeffs[k as usize];
        if (n as isize - k) % 2 == 0 {
            row0.push(c);
        } else {
            row1.push(c);
        }
        k -= 1;
    }
    row0.resize(width, 0.0);
    row1.resize(width, 0.0);

    let eps = 1e-9
        * coeffs
            .iter()
            .fold(0.0f64, |m, &c| m.max(c.abs()))
            .max(1.0);
    let mut marginal = false;
    let mut first_column = vec![row0[0]];
    // Degenerate degree-1 handling falls out of the loop naturally.
    let mut prev = row0;
    let mut cur = row1;
    for _ in 0..n {
        if cur[0] == 0.0 {
            if cur.iter().all(|&c| c == 0.0) {
                // Entire row of zeros: differentiate the auxiliary
                // polynomial built from `prev`.
                marginal = true;
                let order = n; // upper bound on powers; spacing is 2
                let mut aux = Vec::with_capacity(cur.len());
                for (i, &c) in prev.iter().enumerate() {
                    let power = order.saturating_sub(2 * i);
                    aux.push(c * power as f64);
                }
                cur = aux;
                if cur[0] == 0.0 {
                    cur[0] = eps;
                }
            } else {
                marginal = true;
                cur[0] = eps;
            }
        }
        first_column.push(cur[0]);
        // Next row: c[i] = (cur[0]·prev[i+1] − prev[0]·cur[i+1]) / cur[0].
        let mut next = vec![0.0; cur.len()];
        for i in 0..cur.len() - 1 {
            next[i] = (cur[0] * prev[i + 1] - prev[0] * cur.get(i + 1).copied().unwrap_or(0.0))
                / cur[0];
        }
        prev = cur;
        cur = next;
        if first_column.len() == n + 1 {
            break;
        }
    }

    let rhp = first_column
        .windows(2)
        .filter(|w| w[0].signum() != w[1].signum() && w[1] != 0.0)
        .count();
    RouthResult { rhp_roots: rhp, marginal }
}

/// Gain and phase margins of an open-loop transfer function.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Margins {
    /// Gain margin as a linear factor (∞ if the phase never crosses -180°).
    pub gain_margin: f64,
    /// Phase margin in radians (∞ if the gain never crosses unity).
    pub phase_margin: f64,
    /// Gain-crossover frequency (rad/s), if any.
    pub gain_crossover: Option<f64>,
    /// Phase-crossover frequency (rad/s), if any.
    pub phase_crossover: Option<f64>,
}

impl Margins {
    /// A conventional "comfortably stable" check: gain margin above 2x and
    /// phase margin above 30°.
    pub fn is_comfortable(&self) -> bool {
        self.gain_margin > 2.0 && self.phase_margin > 30f64.to_radians()
    }
}

/// Computes gain/phase margins by sweeping `ω` logarithmically over
/// `[w_min, w_max]` and bisecting each crossover.
///
/// # Panics
///
/// Panics unless `0 < w_min < w_max`.
pub fn margins(open_loop: &TransferFunction, w_min: f64, w_max: f64) -> Margins {
    assert!(w_min > 0.0 && w_max > w_min, "need 0 < w_min < w_max");
    const STEPS: usize = 4000;
    let lmin = w_min.ln();
    let lmax = w_max.ln();
    let w_at = |i: usize| (lmin + (lmax - lmin) * i as f64 / STEPS as f64).exp();

    let mut gain_crossover = None;
    let mut phase_crossover = None;
    let mut prev_mag = open_loop.magnitude(w_at(0));
    let mut prev_phase = open_loop.phase(w_at(0));
    for i in 1..=STEPS {
        let w = w_at(i);
        let mag = open_loop.magnitude(w);
        let phase = open_loop.phase(w);
        if gain_crossover.is_none() && (prev_mag - 1.0) * (mag - 1.0) <= 0.0 && prev_mag != mag {
            gain_crossover = Some(bisect(w_at(i - 1), w, |w| open_loop.magnitude(w) - 1.0));
        }
        let pi = std::f64::consts::PI;
        if phase_crossover.is_none()
            && (prev_phase + pi) * (phase + pi) <= 0.0
            && prev_phase != phase
        {
            phase_crossover = Some(bisect(w_at(i - 1), w, |w| open_loop.phase(w) + pi));
        }
        prev_mag = mag;
        prev_phase = phase;
    }

    let gain_margin = match phase_crossover {
        Some(w) => 1.0 / open_loop.magnitude(w),
        None => f64::INFINITY,
    };
    let phase_margin = match gain_crossover {
        Some(w) => open_loop.phase(w) + std::f64::consts::PI,
        None => f64::INFINITY,
    };
    Margins { gain_margin, phase_margin, gain_crossover, phase_crossover }
}

fn bisect(mut lo: f64, mut hi: f64, f: impl Fn(f64) -> f64) -> f64 {
    let flo = f(lo);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if (f(mid) > 0.0) == (flo > 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_second_order() {
        // s² + 3s + 2 = (s+1)(s+2): stable.
        let r = routh_hurwitz(&Polynomial::new(vec![2.0, 3.0, 1.0]));
        assert!(r.is_stable());
    }

    #[test]
    fn unstable_root_counted() {
        // (s-1)(s+2) = s² + s - 2: one RHP root.
        let r = routh_hurwitz(&Polynomial::new(vec![-2.0, 1.0, 1.0]));
        assert_eq!(r.rhp_roots, 1);
        assert!(!r.is_stable());
    }

    #[test]
    fn third_order_examples() {
        // s³ + 2s² + 3s + 1: stable (2·3 > 1·1).
        assert!(routh_hurwitz(&Polynomial::new(vec![1.0, 3.0, 2.0, 1.0])).is_stable());
        // s³ + s² + s + 10: unstable pair (1·1 < 10).
        let r = routh_hurwitz(&Polynomial::new(vec![10.0, 1.0, 1.0, 1.0]));
        assert_eq!(r.rhp_roots, 2);
    }

    #[test]
    fn marginal_oscillator_flagged() {
        // s² + 4: purely imaginary roots.
        let r = routh_hurwitz(&Polynomial::new(vec![4.0, 0.0, 1.0]));
        assert!(r.marginal);
        assert!(!r.is_stable());
    }

    #[test]
    fn negative_leading_coefficient_normalized() {
        // -(s+1)(s+2) is still a stable root set.
        let r = routh_hurwitz(&Polynomial::new(vec![-2.0, -3.0, -1.0]));
        assert!(r.is_stable());
    }

    #[test]
    fn first_order_margins() {
        // Open loop 4/(s+1): |H|=1 at w=√15, phase there = -atan(√15);
        // no -180° crossing, so gain margin is infinite.
        let ol = TransferFunction::first_order(4.0, 1.0, 0.0);
        let m = margins(&ol, 1e-2, 1e3);
        assert!(m.gain_margin.is_infinite());
        let wc = m.gain_crossover.expect("crosses unity");
        assert!((wc - 15f64.sqrt()).abs() < 1e-3, "wc = {wc}");
        let expected_pm = std::f64::consts::PI - 15f64.sqrt().atan();
        assert!((m.phase_margin - expected_pm).abs() < 1e-3);
    }

    #[test]
    fn delay_reduces_phase_margin() {
        let no_delay = TransferFunction::first_order(4.0, 1.0, 0.0);
        let with_delay = TransferFunction::first_order(4.0, 1.0, 0.3);
        let m0 = margins(&no_delay, 1e-2, 1e3);
        let m1 = margins(&with_delay, 1e-2, 1e3);
        assert!(m1.phase_margin < m0.phase_margin);
        assert!(m1.gain_margin.is_finite(), "delay creates a -180° crossing");
    }

    #[test]
    fn routh_agrees_with_margins_for_delayed_loop() {
        // Open loop k·e^{-0.5s}/(s+1): find a k that margins call unstable
        // and check the Padé char-poly agrees.
        let unstable = TransferFunction::first_order(8.0, 1.0, 0.5);
        let m = margins(&unstable, 1e-2, 1e3);
        assert!(m.phase_margin < 0.0 || m.gain_margin < 1.0, "{m:?}");
        let cp = unstable.pade1().characteristic_polynomial();
        assert!(!routh_hurwitz(&cp).is_stable());

        let stable = TransferFunction::first_order(1.5, 1.0, 0.5);
        let m = margins(&stable, 1e-2, 1e3);
        assert!(m.phase_margin > 0.0 && m.gain_margin > 1.0);
        let cp = stable.pade1().characteristic_polynomial();
        assert!(routh_hurwitz(&cp).is_stable());
    }
}
