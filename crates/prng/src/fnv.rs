//! A 128-bit FNV-1a hasher for content-addressed artifact fingerprints.
//!
//! The result cache (ROADMAP item 4) keys immutable artifacts by a hash
//! of their full specification, so the hash must be *deterministic across
//! processes, platforms, and versions of this workspace* — `std`'s
//! `DefaultHasher` is explicitly allowed to change between releases and
//! is seeded per-process, so it cannot name an on-disk cache entry.
//! FNV-1a at 128 bits is the standard dependency-free choice: pure
//! `u128` arithmetic, byte-order independent (input is consumed as a
//! byte stream), and wide enough that accidental collisions are not a
//! practical concern (the cache treats the fingerprint as identity).
//!
//! Canonicalization of floats is the caller's contract and
//! [`Fnv128::write_f64`] implements it: every NaN hashes as the one
//! canonical quiet-NaN bit pattern (payloads must not split keys), while
//! `-0.0` and `+0.0` hash differently (they are distinct specifications
//! — a negated coupling resistance is not the same network).
//!
//! The hasher also implements [`std::fmt::Write`], so a `Debug`
//! rendering can be streamed straight into it without allocating:
//! `write!(h, "{config:?}")`. Rust's `Debug` for `f64` prints the
//! shortest string that round-trips (distinct finite values never
//! collide), prints every NaN as `NaN`, and keeps the sign of `-0.0` —
//! exactly the canonicalization above.

/// FNV-1a 128-bit offset basis.
const OFFSET_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;

/// FNV-1a 128-bit prime (2^88 + 2^8 + 0x3b).
const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// An incremental FNV-1a 128-bit hasher.
///
/// # Examples
///
/// ```
/// use tdtm_prng::Fnv128;
/// use std::fmt::Write as _;
///
/// let mut a = Fnv128::new();
/// a.write(b"spec v1");
/// let mut b = Fnv128::new();
/// write!(b, "spec v1").unwrap();
/// assert_eq!(a.finish(), b.finish());
/// assert_ne!(Fnv128::new().finish(), a.finish());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fnv128 {
    state: u128,
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128 { state: OFFSET_BASIS }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Absorbs a `u32` as little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u128` as little-endian bytes (e.g. a sub-fingerprint).
    pub fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` in canonical form: any NaN hashes as the one
    /// canonical quiet NaN (payloads and NaN signs must not split keys),
    /// every other value by its exact bit pattern — so `-0.0` and `0.0`
    /// hash differently, and distinct finite values never collide.
    pub fn write_f64(&mut self, v: f64) {
        let bits = if v.is_nan() { f64::NAN.to_bits() } else { v.to_bits() };
        self.write_u64(bits);
    }

    /// The 128-bit digest of everything absorbed so far.
    pub fn finish(&self) -> u128 {
        self.state
    }

    /// The digest as 32 lowercase hex digits (on-disk entry names).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

impl std::fmt::Write for Fnv128 {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.write(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    #[test]
    fn known_vectors_pin_the_algorithm() {
        // The empty input is the offset basis by definition; the others
        // pin the multiply/xor order (FNV-1a, not FNV-1). A change here
        // silently invalidates every on-disk cache entry, so fail loudly.
        assert_eq!(Fnv128::new().finish(), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
        let mut h = Fnv128::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964);
        let mut h = Fnv128::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x343e_1662_793c_64bf_6f0d_3597_ba44_6f18);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut one = Fnv128::new();
        one.write(b"hello world");
        let mut parts = Fnv128::new();
        parts.write(b"hello");
        parts.write(b" ");
        parts.write(b"world");
        assert_eq!(one.finish(), parts.finish());
    }

    #[test]
    fn fmt_write_streams_debug_renderings() {
        let mut via_fmt = Fnv128::new();
        write!(via_fmt, "{:?}", (1.5f64, "x")).unwrap();
        let mut via_bytes = Fnv128::new();
        via_bytes.write(format!("{:?}", (1.5f64, "x")).as_bytes());
        assert_eq!(via_fmt.finish(), via_bytes.finish());
    }

    #[test]
    fn f64_canonicalization() {
        let hash_of = |v: f64| {
            let mut h = Fnv128::new();
            h.write_f64(v);
            h.finish()
        };
        // All NaNs collapse to one key...
        let payload_nan = f64::from_bits(0x7ff8_0000_0000_beef);
        let negative_nan = f64::from_bits(0xfff8_0000_0000_0001);
        assert_eq!(hash_of(f64::NAN), hash_of(payload_nan));
        assert_eq!(hash_of(f64::NAN), hash_of(negative_nan));
        // ...while signed zeros stay distinct, as do ordinary values.
        assert_ne!(hash_of(0.0), hash_of(-0.0));
        assert_ne!(hash_of(1.0), hash_of(1.0 + f64::EPSILON));
        assert_ne!(hash_of(f64::NAN), hash_of(0.0));
    }

    #[test]
    fn hex_is_32_lowercase_digits() {
        let mut h = Fnv128::new();
        h.write(b"entry");
        let hex = h.hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(u128::from_str_radix(&hex, 16).unwrap(), h.finish());
    }
}
