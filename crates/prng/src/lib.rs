//! # tdtm-prng — a small deterministic PRNG, dependency-free
//!
//! The simulator needs reproducible pseudo-randomness in two places: the
//! synthetic wrong-path instruction generator (`tdtm-uarch`) and the
//! randomized property tests. Both previously pulled in the external
//! `rand`/`proptest` crates; this crate replaces them with a std-only
//! xoshiro256** generator seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` family uses — so the workspace builds
//! with no registry access at all.
//!
//! Determinism is a hard requirement (see `tests/determinism.rs`): the
//! same seed must yield the same stream on every platform and in every
//! thread. Everything here is pure integer arithmetic, so it does.
//!
//! # Examples
//!
//! ```
//! use tdtm_prng::Rng;
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let roll = a.range_i64(-64, 64);
//! assert!((-64..64).contains(&roll));
//! ```

pub mod fnv;

pub use fnv::Fnv128;

/// A deterministic xoshiro256** generator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64: used to expand a 64-bit seed into the generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams; different seeds yield (for all practical purposes)
    /// independent streams.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        Rng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A uniform integer in `[0, n)`, bias-free via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Rejection zone: multiples of n fit below `limit`.
        let limit = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < limit {
                return v % n;
            }
        }
    }

    /// A uniform index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// A uniform element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_f64() * (hi - lo)
    }
}

/// Runs `body` once per case with an independently seeded generator — the
/// stand-in for a proptest block. Failures carry the case index, so a
/// failing case can be re-run alone with `Rng::new(seed ^ index)`.
pub fn cases(n: u64, seed: u64, mut body: impl FnMut(&mut Rng)) {
    for i in 0..n {
        let mut rng = Rng::new(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        body(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(8);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn known_vector_pins_the_algorithm() {
        // Guards against silent algorithm changes, which would break
        // replay of recorded runs (the wrong-path stream feeds timing).
        let mut r = Rng::new(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::new(0);
        let again: Vec<u64> = (0..3).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn ranges_are_bounded_and_cover() {
        let mut r = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.range_i64(-3, 5);
            assert!((-3..5).contains(&v));
            seen[(v + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws should hit all 8 values");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
        let x = r.range_f64(2.5, 3.5);
        assert!((2.5..3.5).contains(&x));
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.below(10) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn cases_runs_n_independent_cases() {
        let mut count = 0;
        let mut firsts = Vec::new();
        cases(16, 99, |rng| {
            count += 1;
            firsts.push(rng.next_u64());
        });
        assert_eq!(count, 16);
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 16, "cases must be independently seeded");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = Rng::new(1);
        r.range_i64(5, 5);
    }
}
