//! The per-cycle power model: activity factors, conditional clocking, and
//! clock-tree power.

use crate::tech::Technology;
use crate::units::{max_accesses_per_cycle, peak_power};
use tdtm_uarch::activity::THERMAL_BLOCKS;
use tdtm_uarch::{Activity, Block, CoreConfig, NUM_BLOCKS};

/// Wattch's conditional-clocking styles.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ClockGating {
    /// cc0: no gating — every structure burns peak power every cycle.
    Cc0,
    /// cc1: all-or-nothing — peak power if accessed at all, zero if idle.
    Cc1,
    /// cc2: linear with port utilization, zero when idle (ideal gating).
    Cc2,
    /// cc3: linear with port utilization, but an idle structure still
    /// burns a fixed fraction of peak (realistic gating; Wattch's default
    /// assumption and the paper's).
    #[default]
    Cc3,
}

/// Power-model configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PowerConfig {
    /// Technology point.
    pub tech: Technology,
    /// Conditional-clocking style.
    pub gating: ClockGating,
    /// Idle power fraction for cc3 (Wattch uses ~10%).
    pub idle_fraction: f64,
    /// Clock-tree peak power as a fraction of the summed block peaks
    /// (clock distribution is ~30-40% of total power in this era).
    pub clock_fraction: f64,
    /// Fraction of clock power that is unconditionally burned (the global
    /// spine keeps toggling even when the chip idles).
    pub clock_base: f64,
}

impl Default for PowerConfig {
    fn default() -> PowerConfig {
        PowerConfig {
            tech: Technology::paper_018um(),
            gating: ClockGating::Cc3,
            idle_fraction: 0.10,
            clock_fraction: 0.35,
            clock_base: 0.5,
        }
    }
}

/// One cycle's power breakdown.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PowerSample {
    /// Per-block watts, indexed by [`Block::index`].
    pub per_block: [f64; NUM_BLOCKS],
    /// Clock-tree watts.
    pub clock: f64,
    /// Total chip watts.
    pub total: f64,
}

impl PowerSample {
    /// Powers of the paper's seven thermally tracked blocks, in
    /// `THERMAL_BLOCKS` order.
    pub fn thermal_powers(&self) -> [f64; 7] {
        let mut out = [0.0; 7];
        for (i, b) in THERMAL_BLOCKS.iter().enumerate() {
            out[i] = self.per_block[b.index()];
        }
        out
    }
}

/// The Wattch-style power model, precomputed for a core configuration.
#[derive(Clone, Debug)]
pub struct PowerModel {
    peak: [f64; NUM_BLOCKS],
    inv_max_access: [f64; NUM_BLOCKS],
    total_max_access: f64,
    clock_peak: f64,
    cfg: PowerConfig,
}

impl PowerModel {
    /// Builds the model for a core configuration.
    pub fn new(cfg: &PowerConfig, core: &CoreConfig) -> PowerModel {
        let mut peak = [0.0; NUM_BLOCKS];
        for b in Block::all() {
            peak[b.index()] = peak_power(b, core, &cfg.tech);
        }
        let max = max_accesses_per_cycle(core);
        let total_peak: f64 = peak.iter().sum();
        PowerModel {
            peak,
            inv_max_access: max.map(|m| 1.0 / m),
            total_max_access: max.iter().sum(),
            clock_peak: cfg.clock_fraction * total_peak,
            cfg: *cfg,
        }
    }

    /// Peak power of one block (W).
    pub fn peak(&self, block: Block) -> f64 {
        self.peak[block.index()]
    }

    /// Peak chip power (all blocks at full activity plus clock), W.
    pub fn chip_peak(&self) -> f64 {
        self.peak.iter().sum::<f64>() + self.clock_peak
    }

    /// Clock-tree peak power (W).
    pub fn clock_peak(&self) -> f64 {
        self.clock_peak
    }

    /// Computes this cycle's power from the activity counts.
    ///
    /// The gating style is loop-invariant, so the `match` is hoisted out
    /// of the per-block loop (this runs once per simulated cycle); each
    /// arm performs exactly the arithmetic of the reference formulation,
    /// so the results are bit-identical across gating styles.
    pub fn cycle_power(&self, activity: &Activity) -> PowerSample {
        let mut per_block = [0.0; NUM_BLOCKS];
        let counts = activity.counts();
        match self.cfg.gating {
            ClockGating::Cc0 => {
                for (i, p) in per_block.iter_mut().enumerate() {
                    *p = self.peak[i] * 1.0;
                }
            }
            ClockGating::Cc1 => {
                for (i, p) in per_block.iter_mut().enumerate() {
                    *p = self.peak[i] * if counts[i] > 0 { 1.0 } else { 0.0 };
                }
            }
            ClockGating::Cc2 => {
                for (i, p) in per_block.iter_mut().enumerate() {
                    let af = (counts[i] as f64 * self.inv_max_access[i]).min(1.0);
                    *p = self.peak[i] * af;
                }
            }
            ClockGating::Cc3 => {
                let idle = self.cfg.idle_fraction;
                let active = 1.0 - idle;
                for (i, p) in per_block.iter_mut().enumerate() {
                    let af = (counts[i] as f64 * self.inv_max_access[i]).min(1.0);
                    *p = self.peak[i] * if counts[i] > 0 { idle + active * af } else { idle };
                }
            }
        }
        let chip_af = (activity.total() as f64 / self.total_max_access).min(1.0);
        let clock =
            self.clock_peak * (self.cfg.clock_base + (1.0 - self.cfg.clock_base) * chip_af);
        let total = per_block.iter().sum::<f64>() + clock;
        PowerSample { per_block, clock, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(gating: ClockGating) -> PowerModel {
        let cfg = PowerConfig { gating, ..PowerConfig::default() };
        PowerModel::new(&cfg, &CoreConfig::alpha21264_like())
    }

    fn busy_activity() -> Activity {
        let mut a = Activity::new();
        for b in Block::all() {
            a.add(b, 32); // saturate every block
        }
        a
    }

    #[test]
    fn cc0_burns_peak_regardless_of_activity() {
        let m = model(ClockGating::Cc0);
        let idle = m.cycle_power(&Activity::new());
        let busy = m.cycle_power(&busy_activity());
        for i in 0..NUM_BLOCKS {
            assert_eq!(idle.per_block[i], busy.per_block[i]);
        }
    }

    #[test]
    fn cc2_is_zero_when_idle_and_peak_when_saturated() {
        let m = model(ClockGating::Cc2);
        let idle = m.cycle_power(&Activity::new());
        assert!(idle.per_block.iter().all(|&p| p == 0.0));
        let busy = m.cycle_power(&busy_activity());
        for b in Block::all() {
            assert!((busy.per_block[b.index()] - m.peak(b)).abs() < 1e-12);
        }
    }

    #[test]
    fn cc3_idle_floor_is_ten_percent() {
        let m = model(ClockGating::Cc3);
        let idle = m.cycle_power(&Activity::new());
        for b in Block::all() {
            assert!((idle.per_block[b.index()] - 0.1 * m.peak(b)).abs() < 1e-12);
        }
    }

    #[test]
    fn cc3_interpolates_with_utilization() {
        let m = model(ClockGating::Cc3);
        let mut half = Activity::new();
        half.add(Block::IntExec, 2); // max is the 4 integer ALUs
        let p = m.cycle_power(&half).per_block[Block::IntExec.index()];
        let expect = m.peak(Block::IntExec) * (0.1 + 0.9 * 0.5);
        assert!((p - expect).abs() < 1e-12);
    }

    #[test]
    fn activity_factor_clamped_at_one() {
        let m = model(ClockGating::Cc2);
        let mut a = Activity::new();
        a.add(Block::Icache, 100);
        let p = m.cycle_power(&a).per_block[Block::Icache.index()];
        assert!((p - m.peak(Block::Icache)).abs() < 1e-12);
    }

    #[test]
    fn clock_power_has_ungated_base() {
        let m = model(ClockGating::Cc3);
        let idle = m.cycle_power(&Activity::new());
        assert!(idle.clock >= 0.5 * m.clock_peak() - 1e-12);
        let busy = m.cycle_power(&busy_activity());
        assert!(busy.clock > idle.clock);
        assert!((busy.clock - m.clock_peak()).abs() < 1e-9);
    }

    #[test]
    fn chip_peak_matches_saturated_cycle() {
        let m = model(ClockGating::Cc3);
        let busy = m.cycle_power(&busy_activity());
        assert!((busy.total - m.chip_peak()).abs() < 1e-9);
        assert!((60.0..160.0).contains(&m.chip_peak()), "peak {}", m.chip_peak());
    }

    #[test]
    fn thermal_powers_are_the_seven_table3_blocks() {
        let m = model(ClockGating::Cc3);
        let mut a = Activity::new();
        a.add(Block::Dcache, 3);
        let s = m.cycle_power(&a);
        let t = s.thermal_powers();
        assert_eq!(t.len(), 7);
        assert!((t[4] - s.per_block[Block::Dcache.index()]).abs() < 1e-12);
    }
}
