//! Abridged CACTI-style capacitance model for array structures.
//!
//! Wattch derives per-access energy for RAM/CAM arrays (caches, register
//! files, predictor tables, the RUU) from the switched capacitance of the
//! decoder, wordlines, bitlines, and — per the paper's improvement to
//! Wattch — the column decoders/muxes on array structures. We reproduce
//! that decomposition with first-order expressions; senseamp and output
//! driver energy are folded into a fixed per-column term.
//!
//! The model's job in this reproduction is *relative* fidelity (how energy
//! scales with rows, columns, ports, associativity); the absolute scale is
//! normalized once per block in [`crate::units`].

use crate::tech::Technology;

/// Geometry of a RAM array (one bank).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ArrayGeometry {
    /// Number of rows (entries).
    pub rows: usize,
    /// Number of columns (bits per entry, including tags).
    pub cols: usize,
    /// Read/write ports (wordlines and bitline pairs replicate per port;
    /// cell area grows with ports, lengthening the lines).
    pub ports: usize,
}

impl ArrayGeometry {
    /// Per-access switched capacitance (farads) of one port of this array.
    ///
    /// Terms:
    /// * decoder: `log2(rows)` stages of fanout-4-ish gates driving the
    ///   row select — modeled as `3·log2(rows)` µm of gate per stage;
    /// * wordline: pass-gate capacitance plus wire across all columns;
    /// * bitlines: diffusion per row plus wire down all rows, for each
    ///   column (differential pair → factor 2), half-swing;
    /// * column periphery: decoder/mux + senseamp + driver per column.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn access_capacitance(&self, t: &Technology) -> f64 {
        assert!(self.rows > 0 && self.cols > 0 && self.ports > 0, "degenerate array");
        // Multi-porting stretches the cell in both dimensions.
        let port_stretch = 1.0 + 0.3 * (self.ports as f64 - 1.0);
        let cell_w = t.cell_width_um * port_stretch;
        let cell_h = t.cell_height_um * port_stretch;

        let levels = (self.rows as f64).log2().max(1.0);
        let c_decoder = levels * 3.0 * t.c_gate_per_um;

        let c_wordline =
            self.cols as f64 * (2.0 * t.c_gate_per_um + cell_w * t.c_metal_per_um);

        let c_bitline_per_col =
            self.rows as f64 * (t.c_diff_per_um + cell_h * t.c_metal_per_um);
        // Differential pair at half swing ≈ one full-swing line.
        let c_bitlines = self.cols as f64 * c_bitline_per_col;

        // Column decoder + senseamp + output driver per column.
        let c_column_periphery = self.cols as f64 * 8.0 * t.c_gate_per_um;

        c_decoder + c_wordline + c_bitlines + c_column_periphery
    }

    /// Per-access energy (joules) for one port.
    pub fn access_energy(&self, t: &Technology) -> f64 {
        t.switch_energy(self.access_capacitance(t))
    }
}

/// Geometry of a CAM array (wakeup/match structures: RUU tags, LSQ
/// address match, TLBs).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CamGeometry {
    /// Number of entries.
    pub rows: usize,
    /// Match-tag width in bits.
    pub tag_bits: usize,
    /// Broadcast/match ports.
    pub ports: usize,
}

impl CamGeometry {
    /// Per-access (one broadcast + match) switched capacitance.
    ///
    /// Taglines run down all rows; matchlines across all tag bits; every
    /// row's comparator gates load the taglines.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn access_capacitance(&self, t: &Technology) -> f64 {
        assert!(self.rows > 0 && self.tag_bits > 0 && self.ports > 0, "degenerate CAM");
        let port_stretch = 1.0 + 0.3 * (self.ports as f64 - 1.0);
        let cell_h = t.cell_height_um * port_stretch;
        let c_tagline_per_bit =
            self.rows as f64 * (2.0 * t.c_gate_per_um + cell_h * t.c_metal_per_um);
        let c_taglines = self.tag_bits as f64 * c_tagline_per_bit;
        let c_matchlines = self.rows as f64 * self.tag_bits as f64 * t.c_diff_per_um;
        c_taglines + c_matchlines
    }

    /// Per-access energy (joules) for one port.
    pub fn access_energy(&self, t: &Technology) -> f64 {
        t.switch_energy(self.access_capacitance(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::paper_018um()
    }

    #[test]
    fn energy_grows_with_every_dimension() {
        let base = ArrayGeometry { rows: 256, cols: 64, ports: 1 };
        let e0 = base.access_energy(&tech());
        assert!(ArrayGeometry { rows: 512, ..base }.access_energy(&tech()) > e0);
        assert!(ArrayGeometry { cols: 128, ..base }.access_energy(&tech()) > e0);
        assert!(ArrayGeometry { ports: 4, ..base }.access_energy(&tech()) > e0);
    }

    #[test]
    fn bitlines_dominate_large_arrays() {
        // For a big cache bank, bitline energy should be the bulk: compare
        // against a wordline-only estimate.
        let g = ArrayGeometry { rows: 1024, cols: 256, ports: 1 };
        let t = tech();
        let total = g.access_capacitance(&t);
        let c_wordline = g.cols as f64 * (2.0 * t.c_gate_per_um + t.cell_width_um * t.c_metal_per_um);
        assert!(total > 10.0 * c_wordline);
    }

    #[test]
    fn cache_access_energy_is_nanojoule_scale() {
        // A 64 KB 2-way data bank at 0.18 µm / 2 V should cost on the
        // order of a nanojoule per access (before calibration).
        let bank = ArrayGeometry { rows: 1024, cols: 2 * 32 * 8, ports: 2 };
        let e = bank.access_energy(&tech());
        assert!((0.1e-9..20e-9).contains(&e), "e = {e}");
    }

    #[test]
    fn cam_energy_scales_with_entries_and_tag() {
        let base = CamGeometry { rows: 40, tag_bits: 40, ports: 2 };
        let e0 = base.access_energy(&tech());
        assert!(CamGeometry { rows: 80, ..base }.access_energy(&tech()) > e0);
        assert!(CamGeometry { tag_bits: 64, ..base }.access_energy(&tech()) > e0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_rows_rejected() {
        let _ = ArrayGeometry { rows: 0, cols: 1, ports: 1 }.access_energy(&tech());
    }
}
