//! Per-structure power characterization: geometry, ports, and peak power.
//!
//! For every [`Block`] this module derives
//!
//! * a raw per-access energy from the capacitance model (which governs how
//!   the block's power responds to configuration changes), and
//! * a calibrated peak power — the `peak power (W)` column of the
//!   reproduction's Table 3 — normalized so the default configuration's
//!   power densities land at ~1.4 W/mm² for the thermally tracked blocks
//!   (see `DESIGN.md` §5 for how these targets were reconstructed).

use crate::array::{ArrayGeometry, CamGeometry};
use crate::tech::Technology;
use tdtm_uarch::{Block, CoreConfig, NUM_BLOCKS};

/// Calibrated peak power targets (watts) for the default configuration,
/// indexed by [`Block::index`].
///
/// The seven thermal blocks follow the ~1.4 W/mm² density over the
/// paper's Table 3 areas; the rest are set to representative Wattch
/// breakdown shares for a 1.5 GHz / 2.0 V part.
pub const PEAK_TARGETS_W: [f64; NUM_BLOCKS] = [
    7.0,  // LSQ
    13.0, // window (RUU)
    4.2,  // regfile
    5.6,  // bpred (+BTB, RAS)
    14.0, // D-cache
    8.0,  // int exec
    8.0,  // FP exec
    8.0,  // I-cache
    6.0,  // L2 (per-access-limited)
    1.0,  // ITLB
    1.5,  // DTLB
    3.0,  // rename
    3.5,  // result bus
];

/// Maximum *sustainable* accesses per cycle per block — the denominator of
/// the activity factor. Set to what a real instruction stream can keep up,
/// not the sum of every port (a structure accessed at its sustainable rate
/// is at full activity; transient bursts above it clamp to 1).
pub fn max_accesses_per_cycle(cfg: &CoreConfig) -> [f64; NUM_BLOCKS] {
    let mut m = [1.0f64; NUM_BLOCKS];
    m[Block::Lsq.index()] = 4.0;
    m[Block::Window.index()] = (cfg.decode_width + cfg.issue_width + cfg.commit_width) as f64 * 0.9;
    m[Block::Regfile.index()] = cfg.commit_width as f64;
    m[Block::Bpred.index()] = 4.0;
    m[Block::Dcache.index()] = cfg.mem_ports as f64;
    m[Block::IntExec.index()] = cfg.int_alu_count as f64;
    m[Block::FpExec.index()] = (cfg.fp_alu_count + cfg.fp_mult_count) as f64;
    m[Block::Icache.index()] = 1.0;
    m[Block::L2.index()] = 2.0;
    m[Block::Itlb.index()] = 1.0;
    m[Block::Dtlb.index()] = cfg.mem_ports as f64;
    m[Block::Rename.index()] = cfg.decode_width as f64;
    m[Block::ResultBus.index()] = cfg.issue_width as f64;
    m
}

/// Raw (uncalibrated) per-access energy for a block, from the capacitance
/// model. Used for relative scaling across configurations.
pub fn raw_access_energy(block: Block, cfg: &CoreConfig, t: &Technology) -> f64 {
    let data_bits_per_line = |line: usize, assoc: usize| line * 8 * assoc;
    match block {
        Block::Lsq => {
            let cam = CamGeometry { rows: cfg.lsq_size, tag_bits: 40, ports: 2 };
            let ram = ArrayGeometry { rows: cfg.lsq_size, cols: 64 + 40, ports: 2 };
            cam.access_energy(t) + ram.access_energy(t)
        }
        Block::Window => {
            let cam = CamGeometry { rows: cfg.ruu_size, tag_bits: 8, ports: cfg.issue_width };
            let ram = ArrayGeometry { rows: cfg.ruu_size, cols: 200, ports: cfg.issue_width };
            cam.access_energy(t) + ram.access_energy(t)
        }
        Block::Regfile => {
            ArrayGeometry { rows: 64, cols: 64, ports: cfg.decode_width + cfg.commit_width }
                .access_energy(t)
        }
        Block::Bpred => {
            let b = &cfg.bpred;
            let tables = ArrayGeometry { rows: b.bimod_entries, cols: 2, ports: 1 }
                .access_energy(t)
                + ArrayGeometry { rows: b.gag_entries, cols: 2, ports: 1 }.access_energy(t)
                + ArrayGeometry { rows: b.chooser_entries, cols: 2, ports: 1 }.access_energy(t);
            let btb = ArrayGeometry {
                rows: b.btb_sets,
                cols: b.btb_assoc * (30 + 32),
                ports: 1,
            }
            .access_energy(t);
            tables + btb
        }
        Block::Dcache => {
            let c = &cfg.l1d;
            let data = ArrayGeometry {
                rows: c.sets(),
                cols: data_bits_per_line(c.line, c.assoc),
                ports: cfg.mem_ports,
            };
            let tags = ArrayGeometry { rows: c.sets(), cols: c.assoc * 28, ports: cfg.mem_ports };
            data.access_energy(t) + tags.access_energy(t)
        }
        Block::Icache => {
            let c = &cfg.l1i;
            let data = ArrayGeometry {
                rows: c.sets(),
                cols: data_bits_per_line(c.line, c.assoc),
                ports: 1,
            };
            let tags = ArrayGeometry { rows: c.sets(), cols: c.assoc * 28, ports: 1 };
            data.access_energy(t) + tags.access_energy(t)
        }
        Block::L2 => {
            let c = &cfg.l2;
            // Banked: an access activates one of 8 banks.
            let data = ArrayGeometry {
                rows: c.sets() / 8,
                cols: data_bits_per_line(c.line, c.assoc),
                ports: 1,
            };
            let tags = ArrayGeometry { rows: c.sets() / 8, cols: c.assoc * 24, ports: 1 };
            data.access_energy(t) + tags.access_energy(t)
        }
        Block::Itlb | Block::Dtlb => {
            CamGeometry { rows: cfg.tlb_entries, tag_bits: 52, ports: 1 }.access_energy(t)
                + ArrayGeometry { rows: cfg.tlb_entries, cols: 40, ports: 1 }.access_energy(t)
        }
        Block::Rename => {
            ArrayGeometry { rows: 64, cols: 8, ports: 2 * cfg.decode_width }.access_energy(t)
        }
        Block::IntExec | Block::FpExec => {
            // Datapath logic, not an array: modeled as equivalent switched
            // gate width per operation (64-bit adder/multiplier scale).
            let gate_um = if block == Block::IntExec { 4000.0 } else { 9000.0 };
            t.switch_energy(gate_um * t.c_gate_per_um)
        }
        Block::ResultBus => {
            // issue_width results × 64 bits × ~2 mm of wire each.
            t.switch_energy(64.0 * 2000.0 * t.c_metal_per_um)
        }
    }
}

/// Peak power (W) for a block under the given config: raw energy scaled by
/// the calibration factor that pins the *default* configuration to
/// [`PEAK_TARGETS_W`].
pub fn peak_power(block: Block, cfg: &CoreConfig, t: &Technology) -> f64 {
    let default_cfg = CoreConfig::alpha21264_like();
    let default_tech = Technology::paper_018um();
    let raw_default = raw_access_energy(block, &default_cfg, &default_tech)
        * max_accesses_per_cycle(&default_cfg)[block.index()]
        * default_tech.clock_hz;
    let calibration = PEAK_TARGETS_W[block.index()] / raw_default;
    let raw = raw_access_energy(block, cfg, t)
        * max_accesses_per_cycle(cfg)[block.index()]
        * t.clock_hz;
    raw * calibration
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_hits_calibration_targets() {
        let cfg = CoreConfig::alpha21264_like();
        let t = Technology::paper_018um();
        for b in Block::all() {
            let p = peak_power(b, &cfg, &t);
            let target = PEAK_TARGETS_W[b.index()];
            assert!(
                (p - target).abs() / target < 1e-9,
                "{b}: {p} vs target {target}"
            );
        }
    }

    #[test]
    fn bigger_cache_burns_more_power() {
        let cfg = CoreConfig::alpha21264_like();
        let mut big = cfg;
        big.l1d.size *= 4;
        let t = Technology::paper_018um();
        assert!(peak_power(Block::Dcache, &big, &t) > peak_power(Block::Dcache, &cfg, &t));
    }

    #[test]
    fn lower_voltage_saves_quadratically() {
        let cfg = CoreConfig::alpha21264_like();
        let t = Technology::paper_018um();
        let mut low = t;
        low.vdd = 1.0;
        let ratio = peak_power(Block::IntExec, &cfg, &t) / peak_power(Block::IntExec, &cfg, &low);
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lower_frequency_saves_linearly() {
        let cfg = CoreConfig::alpha21264_like();
        let t = Technology::paper_018um();
        let mut slow = t;
        slow.clock_hz = 0.75e9;
        let ratio = peak_power(Block::Window, &cfg, &t) / peak_power(Block::Window, &cfg, &slow);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn total_peak_is_plausible_for_the_era() {
        let cfg = CoreConfig::alpha21264_like();
        let t = Technology::paper_018um();
        let total: f64 = Block::all().iter().map(|&b| peak_power(b, &cfg, &t)).sum();
        // Pre-clock sum; the paper era quotes ~55-130 W peak chips.
        assert!((50.0..130.0).contains(&total), "total = {total}");
    }

    #[test]
    fn raw_energies_are_physical_scale() {
        let cfg = CoreConfig::alpha21264_like();
        let t = Technology::paper_018um();
        for b in Block::all() {
            let e = raw_access_energy(b, &cfg, &t);
            assert!(
                (1e-13..1e-7).contains(&e),
                "{b}: raw access energy {e} J outside plausible range"
            );
        }
    }
}
