//! Technology parameters (the paper's 0.18 µm / 2.0 V / 1.5 GHz point).

/// Process/circuit constants for the capacitance model.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Technology {
    /// Feature size in meters.
    pub feature_size: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Clock frequency in hertz.
    pub clock_hz: f64,
    /// Gate capacitance per micron of transistor width (farads/µm).
    pub c_gate_per_um: f64,
    /// Diffusion capacitance per micron of transistor width (farads/µm).
    pub c_diff_per_um: f64,
    /// Wire capacitance per micron of metal (farads/µm).
    pub c_metal_per_um: f64,
    /// SRAM cell width in microns (per port pitch growth is modeled in the
    /// array code).
    pub cell_width_um: f64,
    /// SRAM cell height in microns.
    pub cell_height_um: f64,
}

impl Technology {
    /// The paper's technology point: 0.18 µm, Vdd = 2.0 V, 1.5 GHz, with
    /// per-unit capacitances representative of that node.
    pub fn paper_018um() -> Technology {
        Technology {
            feature_size: 0.18e-6,
            vdd: 2.0,
            clock_hz: 1.5e9,
            c_gate_per_um: 1.0e-15,
            c_diff_per_um: 0.6e-15,
            c_metal_per_um: 0.275e-15,
            cell_width_um: 1.8,
            cell_height_um: 1.8,
        }
    }

    /// Energy (joules) to switch capacitance `c` (farads) across the full
    /// rail: `E = C·Vdd²` (Wattch's convention, which folds in both
    /// charge and discharge of the access).
    pub fn switch_energy(&self, c: f64) -> f64 {
        c * self.vdd * self.vdd
    }

    /// Seconds per cycle.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.clock_hz
    }
}

impl Default for Technology {
    fn default() -> Technology {
        Technology::paper_018um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_values() {
        let t = Technology::paper_018um();
        assert_eq!(t.vdd, 2.0);
        assert!((t.cycle_time() - 667e-12).abs() < 1e-12);
    }

    #[test]
    fn switch_energy_scales_with_v_squared() {
        let t = Technology::paper_018um();
        let mut half = t;
        half.vdd = 1.0;
        let c = 1e-12;
        assert!((t.switch_energy(c) / half.switch_energy(c) - 4.0).abs() < 1e-12);
    }
}
