//! # tdtm-power — Wattch-style activity-based dynamic power
//!
//! Reimplements the role Wattch 1.02 plays in the paper: per-cycle dynamic
//! power for each processor structure, computed as
//!
//! ```text
//! P_block(cycle) = P_peak(block) · gating(activity factor)
//! ```
//!
//! where `P_peak = E_access · accesses_max · f` comes from an abridged
//! CACTI-style capacitance model ([`mod@array`]) over each structure's
//! geometry ([`units`]), and the gating function implements Wattch's
//! conditional-clocking styles cc0–cc3 ([`model::ClockGating`]). Like the
//! paper's setup we default to the realistic cc3 style: unused structures
//! still dissipate a fraction of peak ("10%" in Wattch), used structures
//! scale linearly with port utilization.
//!
//! Absolute calibration: raw capacitance-model energies are normalized so
//! the per-structure peak powers land on the reproduction's Table 3
//! targets (power densities of ~1.4 W/mm² at 1.5 GHz / 2.0 V — see
//! `DESIGN.md`). The capacitance model still governs how peaks *scale*
//! when the configuration changes (sizes, ports, associativity).
//!
//! # Examples
//!
//! ```
//! use tdtm_power::{PowerModel, PowerConfig};
//! use tdtm_uarch::{Activity, Block, CoreConfig};
//!
//! let model = PowerModel::new(&PowerConfig::default(), &CoreConfig::alpha21264_like());
//! let mut idle = Activity::new();
//! let idle_power = model.cycle_power(&idle).total;
//! idle.add(Block::IntExec, 4);
//! idle.add(Block::Dcache, 2);
//! let busy_power = model.cycle_power(&idle).total;
//! assert!(busy_power > idle_power);
//! ```

pub mod array;
pub mod leakage;
pub mod model;
pub mod tech;
pub mod units;

pub use leakage::LeakageModel;
pub use model::{ClockGating, PowerConfig, PowerModel, PowerSample};
pub use tech::Technology;
