//! Temperature-dependent leakage power (an extension beyond the paper).
//!
//! At the paper's 0.18 µm node leakage was a small, roughly constant
//! fraction of total power, and Wattch 1.02 ignored it (the paper cites
//! leakage-cancellation circuits as related work but models dynamic power
//! only). At later nodes leakage grows exponentially with temperature,
//! which *closes a positive feedback loop through the thermal model*:
//! hotter silicon leaks more, which heats it further. This module adds the
//! standard exponential model so the simulator can explore that regime —
//! including the thermal-runaway boundary and how DTM moves it.
//!
//! The model: a block whose peak dynamic power is `P_dyn` leaks
//!
//! ```text
//! P_leak(T) = f₀ · P_dyn · 2^((T − T_ref)/T_double)
//! ```
//!
//! with `f₀` the leakage fraction at the reference temperature and
//! `T_double` the doubling interval (~10 K for subthreshold leakage).

/// Exponential temperature-dependent leakage.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LeakageModel {
    /// Leakage as a fraction of the block's peak dynamic power at the
    /// reference temperature.
    pub base_fraction: f64,
    /// Reference temperature (C).
    pub reference_temp: f64,
    /// Kelvin of temperature rise that doubles the leakage.
    pub doubling_interval: f64,
}

impl LeakageModel {
    /// A 0.18 µm-class model: leakage ~5% of peak dynamic power at 85 C,
    /// doubling every 12 K. Small, as the paper's era assumed.
    pub fn node_180nm() -> LeakageModel {
        LeakageModel { base_fraction: 0.05, reference_temp: 85.0, doubling_interval: 12.0 }
    }

    /// A later-node what-if with leakage at 25% of peak dynamic power —
    /// past the runaway boundary at the default 103 C heatsink: the loop
    /// gain exceeds unity below the blocks' idle equilibria, so the chip
    /// diverges thermally *even when idle*. No DTM policy can contain
    /// this; it demonstrates that the runaway boundary is a property of
    /// the package/operating point, which DTM can only avoid crossing.
    pub fn node_later_whatif() -> LeakageModel {
        LeakageModel { base_fraction: 0.25, reference_temp: 85.0, doubling_interval: 10.0 }
    }

    /// Leakage power (W) of a block with peak dynamic power `peak_dynamic`
    /// at temperature `temp`.
    ///
    /// # Panics
    ///
    /// Panics if the model parameters are non-positive.
    pub fn leakage_power(&self, peak_dynamic: f64, temp: f64) -> f64 {
        assert!(
            self.base_fraction >= 0.0 && self.doubling_interval > 0.0,
            "bad leakage parameters"
        );
        self.base_fraction
            * peak_dynamic
            * 2f64.powf((temp - self.reference_temp) / self.doubling_interval)
    }

    /// The loop gain of the leakage-thermal feedback for a block with the
    /// given peak dynamic power and thermal resistance, evaluated at
    /// `temp`: `dP_leak/dT · R`. Values ≥ 1 mean thermal runaway — no
    /// stable operating point above `temp`.
    pub fn loop_gain(&self, peak_dynamic: f64, r_thermal: f64, temp: f64) -> f64 {
        let dp_dt =
            self.leakage_power(peak_dynamic, temp) * std::f64::consts::LN_2 / self.doubling_interval;
        dp_dt * r_thermal
    }

    /// The runaway temperature: where the loop gain reaches 1 for this
    /// block, or `None` if it never does below boiling-silicon absurdity.
    pub fn runaway_temperature(&self, peak_dynamic: f64, r_thermal: f64) -> Option<f64> {
        // loop_gain grows monotonically in T; solve loop_gain = 1.
        let mut lo = -100.0;
        let mut hi = 1000.0;
        if self.loop_gain(peak_dynamic, r_thermal, hi) < 1.0 {
            return None;
        }
        if self.loop_gain(peak_dynamic, r_thermal, lo) >= 1.0 {
            return Some(lo);
        }
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if self.loop_gain(peak_dynamic, r_thermal, mid) < 1.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_per_interval() {
        let m = LeakageModel::node_180nm();
        let p0 = m.leakage_power(10.0, 85.0);
        let p1 = m.leakage_power(10.0, 97.0);
        assert!((p1 / p0 - 2.0).abs() < 1e-12);
        assert!((p0 - 0.5).abs() < 1e-12, "5% of 10 W at reference");
    }

    #[test]
    fn paper_era_leakage_is_small_at_operating_point() {
        let m = LeakageModel::node_180nm();
        // Hottest block: 8 W peak at ~111 C.
        let leak = m.leakage_power(8.0, 111.0);
        assert!(leak < 2.0, "0.18um leakage stays small: {leak} W");
        assert!(m.loop_gain(8.0, 1.2, 111.0) < 0.2, "no runaway risk at 0.18um");
    }

    #[test]
    fn whatif_node_has_a_runaway_boundary() {
        let m = LeakageModel::node_later_whatif();
        let runaway = m.runaway_temperature(8.0, 1.2).expect("exists");
        assert!(
            (90.0..200.0).contains(&runaway),
            "runaway at plausible temperature, got {runaway}"
        );
        assert!(m.loop_gain(8.0, 1.2, runaway + 1.0) > 1.0);
        assert!(m.loop_gain(8.0, 1.2, runaway - 1.0) < 1.0);
    }

    #[test]
    fn mild_models_run_away_only_far_outside_the_operating_realm() {
        // An exponential always crosses unity gain eventually; for a mild
        // model that crossing sits hundreds of kelvin above anything a
        // packaged chip can reach.
        let m = LeakageModel { base_fraction: 0.01, reference_temp: 85.0, doubling_interval: 20.0 };
        let t = m.runaway_temperature(8.0, 1.2).expect("exponential crosses eventually");
        assert!(t > 200.0, "mild-model runaway at {t:.0} C is beyond the operating realm");
    }

    #[test]
    fn loop_gain_scales_with_thermal_resistance() {
        let m = LeakageModel::node_later_whatif();
        assert!(m.loop_gain(8.0, 2.4, 110.0) > m.loop_gain(8.0, 1.2, 110.0));
    }
}
