//! # tdtm — control-theoretic dynamic thermal management with localized thermal-RC modeling
//!
//! A from-scratch Rust reproduction of Skadron, Abdelzaher & Stan,
//! *"Control-Theoretic Techniques and Thermal-RC Modeling for Accurate and
//! Localized Dynamic Thermal Management"* (HPCA 2002).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`isa`] — the TDISA instruction set and assembler;
//! * [`frontend`] — functional simulation (the oracle instruction stream);
//! * [`uarch`] — the cycle-level out-of-order core with per-structure
//!   activity counting and a fetch-toggling actuator;
//! * [`power`] — the Wattch-style activity-based dynamic power model;
//! * [`thermal`] — the paper's contribution: lumped thermal-RC models at
//!   functional-block granularity, plus chip-wide and boxcar-proxy models;
//! * [`control`] — transfer functions, PID design, and discrete controllers
//!   with anti-windup;
//! * [`dtm`] — dynamic thermal management policies (fixed toggling,
//!   throttling, speculation control, V/f scaling, and the P/PI/PID
//!   control-theoretic policies);
//! * [`workloads`] — the 18 synthetic SPEC2000 stand-in programs;
//! * [`telemetry`] — in-run observability (typed event trace, metrics
//!   registry, phase timers);
//! * [`core`] — the simulator loop, metrics, and experiment drivers.
//!
//! # Quickstart
//!
//! ```
//! use tdtm::core::{SimConfig, Simulator};
//! use tdtm::dtm::PolicyKind;
//!
//! let mut config = SimConfig::default();
//! config.max_insts = 20_000;
//! config.dtm.policy = PolicyKind::Pid;
//! let workload = tdtm::workloads::by_name("gcc").expect("known workload");
//! let mut sim = Simulator::new(config, workload.program().clone());
//! let report = sim.run();
//! assert!(report.committed >= 20_000);
//! assert_eq!(report.emergency_cycles, 0);
//! ```

pub use tdtm_control as control;
pub use tdtm_core as core;
pub use tdtm_dtm as dtm;
pub use tdtm_frontend as frontend;
pub use tdtm_isa as isa;
pub use tdtm_power as power;
pub use tdtm_telemetry as telemetry;
pub use tdtm_thermal as thermal;
pub use tdtm_uarch as uarch;
pub use tdtm_workloads as workloads;
