#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): build, full test suite, and strict lints
# on the crates the experiment engine leans on. Run from anywhere; the
# script cd's to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: release build =="
cargo build --release --workspace

echo "== tier 1: tests =="
cargo test -q --workspace

echo "== tier 1: clippy (tdtm-core, tdtm-thermal) =="
cargo clippy -p tdtm-core -p tdtm-thermal --all-targets -- -D warnings

echo "== tier 1: docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== tier 1: trace_run smoke =="
cargo run -q --release -p tdtm-bench --bin trace_run -- gcc pid --stride 1000 --insts 60000 > /dev/null
# The chip path: per-core rings + the chip supervisor ring.
cargo run -q --release -p tdtm-bench --bin trace_run -- gcc pid --cores 2 --supervisor --stride 1000 --insts 8000 > /dev/null

echo "== tier 1: obs_report smoke (streaming grid -> JSONL -> dashboard) =="
# End-to-end through the observability stack: run a 2x2 grid with
# streaming, then assert the JSONL parses and the dashboard renders.
OBS_STREAM="$(mktemp /tmp/tier1_obs.XXXXXX.jsonl)"
CACHE_DIR="$(mktemp -d /tmp/tier1_cache.XXXXXX)"
trap 'rm -f "$OBS_STREAM" "$OBS_STREAM".s1 "$OBS_STREAM".s2 "$OBS_STREAM".s3; rm -rf "$CACHE_DIR"' EXIT
OBS_OUT="$(cargo run -q --release -p tdtm-bench --bin obs_report -- --demo-grid "$OBS_STREAM" 2> /dev/null)"
test "$(wc -l < "$OBS_STREAM")" -eq 4 || { echo "obs stream: expected 4 JSONL records"; exit 1; }
grep -q '"label":"gcc/PID"' "$OBS_STREAM" || { echo "obs stream: missing cell record"; exit 1; }
echo "$OBS_OUT" | grep -q '^# Grid observability dashboard' || { echo "obs_report: dashboard did not render"; exit 1; }
echo "$OBS_OUT" | grep -q '| art/stability |' || { echo "obs_report: missing per-cell row"; exit 1; }

echo "== tier 1: result cache smoke (cold -> warm -> TDTM_CACHE=0) =="
# The same 2x2 streaming grid three ways through fresh processes sharing
# one TDTM_CACHE_DIR: the cold pass populates the disk tier, the warm
# pass must replay every cell ("cached":true) with a 100% dashboard hit
# rate, and the TDTM_CACHE=0 pass must reproduce pre-cache behavior
# exactly (no "cached" field at all). Up to host-side stamps/timing and
# cache provenance, all three streams are identical.
S1_OUT="$(TDTM_CACHE_DIR="$CACHE_DIR" cargo run -q --release -p tdtm-bench --bin obs_report -- --demo-grid "$OBS_STREAM".s1 2> /dev/null)"
S2_OUT="$(TDTM_CACHE_DIR="$CACHE_DIR" cargo run -q --release -p tdtm-bench --bin obs_report -- --demo-grid "$OBS_STREAM".s2 2> /dev/null)"
TDTM_CACHE=0 TDTM_CACHE_DIR="$CACHE_DIR" cargo run -q --release -p tdtm-bench --bin obs_report -- --demo-grid "$OBS_STREAM".s3 > /dev/null 2>&1
test "$(grep -c '"cached":false' "$OBS_STREAM".s1)" -eq 4 || { echo "cache smoke: cold pass must stream 4 fresh records"; exit 1; }
test "$(grep -c '"cached":true' "$OBS_STREAM".s2)" -eq 4 || { echo "cache smoke: warm pass must replay all 4 records"; exit 1; }
grep -q '"cached"' "$OBS_STREAM".s3 && { echo "cache smoke: TDTM_CACHE=0 must not stamp cache provenance"; exit 1; }
echo "$S1_OUT" | grep -q 'cache hit rate: 0.0% (0/4 cells cached)' || { echo "cache smoke: cold dashboard hit rate wrong"; exit 1; }
echo "$S2_OUT" | grep -q 'cache hit rate: 100.0% (4/4 cells cached)' || { echo "cache smoke: warm dashboard hit rate wrong"; exit 1; }
# Strip stamps, timing, and provenance; the remaining bytes must agree.
obs_norm() { sed -E 's/"seq":[0-9]+/"seq":0/g; s/"(wall_seconds|elapsed_seconds)":[0-9.eE+-]+/"\1":0/g; s/"cached":(true|false),//g' "$1"; }
diff <(obs_norm "$OBS_STREAM".s1) <(obs_norm "$OBS_STREAM".s2) || { echo "cache smoke: warm replay diverged from cold stream"; exit 1; }
diff <(obs_norm "$OBS_STREAM".s1) <(obs_norm "$OBS_STREAM".s3) || { echo "cache smoke: TDTM_CACHE=0 diverged from cold stream"; exit 1; }
test "$(ls "$CACHE_DIR" | wc -l)" -ge 4 || { echo "cache smoke: disk tier holds no entries"; exit 1; }

echo "== tier 1: multicore interference smoke =="
# The cross-core figure end-to-end at a tiny budget: coupled chips, the
# supervisor, and both retrieved-literature policies through the engine.
TDTM_INSTS=8000 cargo run -q --release -p tdtm-bench --bin fig_multicore_interference > /dev/null

echo "== tier 1: bench regression smoke (simulator_throughput vs BENCH_simloop.json) =="
# Reduced batch count (--quick: one rep per row, no calibrated micro rows);
# fails if any shared row regresses >3x against the committed baseline.
# The bench also self-gates the idle-gap-skipping speedup on the
# sim_run_gcc_toggle / _noskip pair (floor 1.5x).
# Absolute path: cargo runs bench binaries with CWD = the package dir.
cargo bench -p tdtm-bench --bench simulator_throughput -- --quick --check "$PWD/BENCH_simloop.json"

echo "== tier 1: idle-gap skip identity smoke (TDTM_SKIP=0 vs default) =="
# One toggle-policy chip cell both ways through the env-var opt-out: the
# per-core and chip summaries (cycles, IPC, emergency/stress, peak
# temperature) must match to the last printed digit. The chip path is the
# one whose report-producing loop skips even under telemetry; the
# single-core telemetry run routes through the never-skipping reference
# loop and would make this check vacuous.
ON_ERR="$(TDTM_INSTS=20000 cargo run -q --release -p tdtm-bench --bin trace_run -- gcc toggle1 --cores 2 --stride 1000 2>&1 > /dev/null)"
OFF_ERR="$(TDTM_INSTS=20000 TDTM_SKIP=0 cargo run -q --release -p tdtm-bench --bin trace_run -- gcc toggle1 --cores 2 --stride 1000 2>&1 > /dev/null)"
REPORT='^(core [0-9]|chip: [0-9]|        hottest)'
SKIP_ON="$(echo "$ON_ERR" | grep -E "$REPORT")"
SKIP_OFF="$(echo "$OFF_ERR" | grep -E "$REPORT")"
test -n "$SKIP_ON" || { echo "idle-gap skip smoke: no report lines captured"; exit 1; }
echo "$ON_ERR" | grep -E '^skipped idle windows .* [1-9][0-9]* windows' > /dev/null \
  || { echo "idle-gap skip smoke: default run skipped no windows (vacuous)"; exit 1; }
diff <(echo "$SKIP_ON") <(echo "$SKIP_OFF") || { echo "idle-gap skipping perturbed the run"; exit 1; }

echo "== tier 1: grid throughput smoke (grid_throughput vs BENCH_grid.json) =="
# Full 18x5 hot grid through both dispatches (reference and batched SoA);
# fails if either regresses >3x against the committed cells/sec baseline.
cargo bench -p tdtm-bench --bench grid_throughput -- --quick --check "$PWD/BENCH_grid.json"

echo "== tier 1: warm-repeat throughput smoke (grid_repeat_throughput vs BENCH_grid.json) =="
# Cold vs warm-memory vs warm-disk repeats of the same 18x5 hot grid
# through the content-addressed result cache; self-gates warm-mem >= 5x
# cold cells/s and fails on >3x regression vs the committed rows.
cargo bench -p tdtm-bench --bench grid_repeat_throughput -- --quick --check "$PWD/BENCH_grid.json"

echo "== tier 1: reduction accuracy smoke (Table-3 compact extraction) =="
# Extracts the Table-3 floorplan into a compact model and asserts the
# truncation error bound and full-solver agreement hold at tol = 10.
cargo test -q --release -p tdtm-thermal --lib table3_floorplan_extracts_and_tracks -- --exact reduction::tests::table3_floorplan_extracts_and_tracks

echo "tier 1: OK"
