#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): build, full test suite, and strict lints
# on the crates the experiment engine leans on. Run from anywhere; the
# script cd's to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: release build =="
cargo build --release --workspace

echo "== tier 1: tests =="
cargo test -q --workspace

echo "== tier 1: clippy (tdtm-core, tdtm-thermal) =="
cargo clippy -p tdtm-core -p tdtm-thermal --all-targets -- -D warnings

echo "== tier 1: docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== tier 1: trace_run smoke =="
cargo run -q --release -p tdtm-bench --bin trace_run -- gcc pid --stride 1000 --insts 60000 > /dev/null

echo "== tier 1: multicore interference smoke =="
# The cross-core figure end-to-end at a tiny budget: coupled chips, the
# supervisor, and both retrieved-literature policies through the engine.
TDTM_INSTS=8000 cargo run -q --release -p tdtm-bench --bin fig_multicore_interference > /dev/null

echo "== tier 1: bench regression smoke (simulator_throughput vs BENCH_simloop.json) =="
# Reduced batch count (--quick: one rep per row, no calibrated micro rows);
# fails if any shared row regresses >3x against the committed baseline.
# Absolute path: cargo runs bench binaries with CWD = the package dir.
cargo bench -p tdtm-bench --bench simulator_throughput -- --quick --check "$PWD/BENCH_simloop.json"

echo "tier 1: OK"
