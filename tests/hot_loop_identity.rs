//! The run-loop specialization contract.
//!
//! `Simulator::run` dispatches between a specialized uninstrumented
//! chunked loop and the fully instrumented reference loop (see the "hot
//! path" section of DESIGN.md). These tests pin the contract that the
//! dispatch is invisible: the two loops produce byte-identical reports,
//! attaching any instrumentation never perturbs the simulation, and the
//! trace/DTM stride conventions hold.

use tdtm::core::{SimConfig, Simulator};
use tdtm::dtm::PolicyKind;
use tdtm::power::LeakageModel;
use tdtm::telemetry::TelemetryConfig;
use tdtm::workloads::by_name;

/// A config hot enough that DTM policies actually engage inside the
/// window, so the identity checks cover the actuated paths too.
fn hot_cfg(policy: PolicyKind) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.max_insts = 120_000;
    cfg.heatsink_temp = 107.0;
    cfg.dtm.policy = policy;
    cfg
}

fn run_with(cfg: SimConfig, bench: &str, reference: bool) -> (tdtm::core::RunReport, Vec<f64>) {
    let w = by_name(bench).expect("suite workload");
    let mut sim = Simulator::for_workload(cfg, &w);
    sim.set_reference_loop(reference);
    let report = sim.run();
    (report, sim.duty_history().to_vec())
}

/// Byte-level equality: `RunReport`'s `PartialEq` compares `f64`s by
/// value (which conflates `-0.0` and `0.0`), so also compare the full
/// shortest-roundtrip debug rendering, which distinguishes every bit
/// pattern short of NaN.
fn assert_byte_identical(a: &tdtm::core::RunReport, b: &tdtm::core::RunReport, what: &str) {
    assert_eq!(a, b, "{what}: reports differ");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}: bit patterns differ");
}

#[test]
fn fast_loop_matches_reference_loop_across_policies() {
    for policy in [PolicyKind::None, PolicyKind::Pid, PolicyKind::Toggle1, PolicyKind::VfScale] {
        let (fast, fast_duty) = run_with(hot_cfg(policy), "gcc", false);
        let (reference, ref_duty) = run_with(hot_cfg(policy), "gcc", true);
        assert_byte_identical(&fast, &reference, &format!("policy {policy:?}"));
        assert_eq!(fast_duty, ref_duty, "policy {policy:?}: duty histories differ");
    }
}

#[test]
fn fast_loop_matches_reference_loop_with_leakage() {
    let mut cfg = hot_cfg(PolicyKind::Pid);
    cfg.leakage = Some(LeakageModel::node_180nm());
    let (fast, _) = run_with(cfg.clone(), "gcc", false);
    let (reference, _) = run_with(cfg, "gcc", true);
    assert_byte_identical(&fast, &reference, "leakage");
}

#[test]
fn fast_loop_matches_reference_loop_without_warm_start() {
    let mut cfg = hot_cfg(PolicyKind::Pid);
    cfg.warm_start = false;
    let (fast, _) = run_with(cfg.clone(), "art", false);
    let (reference, _) = run_with(cfg, "art", true);
    assert_byte_identical(&fast, &reference, "no warm start");
}

#[test]
fn batched_soa_stepping_matches_both_loops_across_policies() {
    // The engine's third execution strategy: eligible cells run in
    // lockstep over a shared SoA thermal batch (`tdtm_core::batch`).
    // For every policy the batched grid report must be byte-identical
    // to the cell's own fast- and reference-loop runs.
    use tdtm::core::engine::ExperimentGrid;
    use tdtm::core::experiments::ExperimentScale;

    let grid = ExperimentGrid::new(ExperimentScale::quick())
        .workload(by_name("gcc").expect("suite workload"))
        .policies(&[PolicyKind::None, PolicyKind::Pid, PolicyKind::Toggle1, PolicyKind::VfScale])
        .variant("hot", |cfg| {
            cfg.max_insts = 120_000;
            cfg.heatsink_temp = 107.0;
        });
    let batched = grid.run_threads_with_batching(1, true);
    assert_eq!(batched.runs.len(), 4);
    for run in &batched.runs {
        let (fast, _) = run_with(hot_cfg(run.policy), "gcc", false);
        let (reference, _) = run_with(hot_cfg(run.policy), "gcc", true);
        assert_byte_identical(&run.report, &fast, &format!("batched vs fast, {:?}", run.policy));
        assert_byte_identical(
            &run.report,
            &reference,
            &format!("batched vs reference, {:?}", run.policy),
        );
    }
}

#[test]
fn telemetry_never_perturbs_the_simulation() {
    // Telemetry collection routes through the reference loop; a plain run
    // takes the fast loop. The report must not notice.
    let (plain, plain_duty) = run_with(hot_cfg(PolicyKind::Pid), "gcc", false);
    let w = by_name("gcc").expect("suite workload");
    let mut sim = Simulator::for_workload(hot_cfg(PolicyKind::Pid), &w);
    sim.enable_telemetry(&TelemetryConfig::full(4096, 4));
    let observed = sim.run();
    assert_byte_identical(&plain, &observed, "telemetry on vs off");
    assert_eq!(plain_duty, sim.duty_history(), "telemetry on vs off duty");
    assert!(sim.telemetry().is_some(), "telemetry was collected");
}

#[test]
fn proxies_never_perturb_the_simulation_and_count_deterministically() {
    let run_proxied = || {
        let w = by_name("gcc").expect("suite workload");
        let mut sim = Simulator::for_workload(hot_cfg(PolicyKind::None), &w);
        sim.add_structure_proxy(10_000);
        sim.add_chipwide_proxy(10_000, 47.0);
        let report = sim.run();
        let counts: Vec<_> = sim.proxies().iter().map(|p| p.counts.clone()).collect();
        (report, counts)
    };
    let (r1, c1) = run_proxied();
    let (r2, c2) = run_proxied();
    assert_eq!(c1, c2, "agreement counts must be deterministic");
    assert_byte_identical(&r1, &r2, "proxied runs");

    // Attaching proxies forces the reference loop; the report must still
    // be byte-identical to the fast uninstrumented run.
    let (plain, _) = run_with(hot_cfg(PolicyKind::None), "gcc", false);
    assert_byte_identical(&plain, &r1, "proxies on vs off");
}

#[test]
fn trace_and_dtm_sampling_strides_are_asymmetric() {
    // Convention, pinned: a trace sample fires at the *start* of each
    // stride — on cycles where `cycle % stride == 0`, so the first is
    // cycle 0 — while a DTM sample fires at the *end* of each interval —
    // on cycles where `(cycle + 1) % interval == 0`, so the first is
    // cycle `interval - 1` and a trailing partial interval never samples.
    let cfg = hot_cfg(PolicyKind::Pid);
    let interval = cfg.dtm.sample_interval;
    let stride = 1_000u64;
    let w = by_name("gcc").expect("suite workload");
    let mut sim = Simulator::for_workload(cfg, &w);
    sim.record_trace(stride);
    let report = sim.run();
    let trace = sim.trace().expect("trace was recorded");

    let total = report.total_cycles;
    assert!(
        !total.is_multiple_of(interval),
        "need a partial trailing interval to discriminate the conventions (total {total})"
    );
    // Start-of-stride convention: samples at 0, stride, 2·stride, ...
    let expected: Vec<u64> = (0..total.div_ceil(stride)).map(|k| k * stride).collect();
    assert_eq!(trace.cycles, expected, "trace fires on cycle % stride == 0");
    // End-of-interval convention: one sample per *complete* interval.
    assert_eq!(
        report.samples,
        total / interval,
        "DTM fires on (cycle + 1) % interval == 0"
    );
    assert_eq!(report.samples, sim.duty_history().len() as u64);
}
