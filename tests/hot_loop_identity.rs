//! The run-loop specialization contract.
//!
//! `Simulator::run` dispatches between a specialized uninstrumented
//! chunked loop and the fully instrumented reference loop (see the "hot
//! path" section of DESIGN.md). These tests pin the contract that the
//! dispatch is invisible: the two loops produce byte-identical reports,
//! attaching any instrumentation never perturbs the simulation, and the
//! trace/DTM stride conventions hold.

use tdtm::core::{SimConfig, Simulator};
use tdtm::dtm::PolicyKind;
use tdtm::power::LeakageModel;
use tdtm::telemetry::TelemetryConfig;
use tdtm::workloads::by_name;

/// A config hot enough that DTM policies actually engage inside the
/// window, so the identity checks cover the actuated paths too.
fn hot_cfg(policy: PolicyKind) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.max_insts = 120_000;
    cfg.heatsink_temp = 107.0;
    cfg.dtm.policy = policy;
    cfg
}

fn run_with(cfg: SimConfig, bench: &str, reference: bool) -> (tdtm::core::RunReport, Vec<f64>) {
    let w = by_name(bench).expect("suite workload");
    let mut sim = Simulator::for_workload(cfg, &w);
    sim.set_reference_loop(reference);
    let report = sim.run();
    (report, sim.duty_history().to_vec())
}

/// Byte-level equality: `RunReport`'s `PartialEq` compares `f64`s by
/// value (which conflates `-0.0` and `0.0`), so also compare the full
/// shortest-roundtrip debug rendering, which distinguishes every bit
/// pattern short of NaN.
fn assert_byte_identical(a: &tdtm::core::RunReport, b: &tdtm::core::RunReport, what: &str) {
    assert_eq!(a, b, "{what}: reports differ");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}: bit patterns differ");
}

#[test]
fn fast_loop_matches_reference_loop_across_policies() {
    for policy in [PolicyKind::None, PolicyKind::Pid, PolicyKind::Toggle1, PolicyKind::VfScale] {
        let (fast, fast_duty) = run_with(hot_cfg(policy), "gcc", false);
        let (reference, ref_duty) = run_with(hot_cfg(policy), "gcc", true);
        assert_byte_identical(&fast, &reference, &format!("policy {policy:?}"));
        assert_eq!(fast_duty, ref_duty, "policy {policy:?}: duty histories differ");
    }
}

#[test]
fn fast_loop_matches_reference_loop_with_leakage() {
    let mut cfg = hot_cfg(PolicyKind::Pid);
    cfg.leakage = Some(LeakageModel::node_180nm());
    let (fast, _) = run_with(cfg.clone(), "gcc", false);
    let (reference, _) = run_with(cfg, "gcc", true);
    assert_byte_identical(&fast, &reference, "leakage");
}

#[test]
fn fast_loop_matches_reference_loop_without_warm_start() {
    let mut cfg = hot_cfg(PolicyKind::Pid);
    cfg.warm_start = false;
    let (fast, _) = run_with(cfg.clone(), "art", false);
    let (reference, _) = run_with(cfg, "art", true);
    assert_byte_identical(&fast, &reference, "no warm start");
}

#[test]
fn batched_soa_stepping_matches_both_loops_across_policies() {
    // The engine's third execution strategy: eligible cells run in
    // lockstep over a shared SoA thermal batch (`tdtm_core::batch`).
    // For every policy the batched grid report must be byte-identical
    // to the cell's own fast- and reference-loop runs.
    use tdtm::core::engine::ExperimentGrid;
    use tdtm::core::experiments::ExperimentScale;

    let grid = ExperimentGrid::new(ExperimentScale::quick())
        .workload(by_name("gcc").expect("suite workload"))
        .policies(&[PolicyKind::None, PolicyKind::Pid, PolicyKind::Toggle1, PolicyKind::VfScale])
        .variant("hot", |cfg| {
            cfg.max_insts = 120_000;
            cfg.heatsink_temp = 107.0;
        });
    let batched = grid.run_threads_with_batching(1, true);
    assert_eq!(batched.runs.len(), 4);
    for run in &batched.runs {
        let (fast, _) = run_with(hot_cfg(run.policy), "gcc", false);
        let (reference, _) = run_with(hot_cfg(run.policy), "gcc", true);
        assert_byte_identical(&run.report, &fast, &format!("batched vs fast, {:?}", run.policy));
        assert_byte_identical(
            &run.report,
            &reference,
            &format!("batched vs reference, {:?}", run.policy),
        );
    }
}

/// Like [`run_with`], with idle-gap skipping pinned on or off (`None`
/// keeps the build default) so the three loop flavors — skipping fast,
/// non-skipping fast, and reference — can be compared pairwise.
fn run_flavor(
    cfg: SimConfig,
    bench: &str,
    reference: bool,
    skip: Option<bool>,
) -> (tdtm::core::RunReport, Vec<f64>) {
    let w = by_name(bench).expect("suite workload");
    let mut sim = Simulator::for_workload(cfg, &w);
    sim.set_reference_loop(reference);
    if let Some(on) = skip {
        sim.set_skip(on);
    }
    let report = sim.run();
    (report, sim.duty_history().to_vec())
}

#[test]
fn idle_gap_skipping_is_byte_identical_across_random_cells() {
    // Property: over random duty regimes (policy × heatsink × sampling
    // interval), memory latencies, warmup windows, and stop conditions,
    // the skipping fast loop, the non-skipping fast loop, and the
    // reference loop produce byte-identical reports (including the
    // gated-cycle counter) and identical duty histories.
    tdtm_prng::cases(8, 0x1D1E_6A50, |rng| {
        let mut cfg = SimConfig::quick_test();
        cfg.dtm.policy = *rng.choose(&[
            PolicyKind::Toggle1,
            PolicyKind::Toggle2,
            PolicyKind::Pid,
            PolicyKind::VfScale,
        ]);
        cfg.heatsink_temp = rng.range_f64(105.0, 109.0);
        cfg.dtm.sample_interval = *rng.choose(&[250, 500, 1000, 1337]);
        cfg.core.mem_latency = rng.range_i64(40, 400) as u64;
        cfg.thermal_warmup_cycles = *rng.choose(&[500, 2000, 4096]);
        cfg.warm_start = rng.next_f64() < 0.5;
        // Stop either on the instruction budget or on a cycle cap that
        // can land anywhere relative to the sampling interval.
        if rng.next_f64() < 0.5 {
            cfg.max_insts = rng.range_i64(20_000, 40_000) as u64;
            cfg.max_cycles = 150_000;
        } else {
            cfg.max_insts = 1_000_000;
            cfg.max_cycles = rng.range_i64(30_000, 120_000) as u64;
        }
        let bench = *rng.choose(&["gcc", "art"]);
        let what = format!(
            "{bench} {:?} heatsink {:.2} interval {} mem {} stop ({}, {})",
            cfg.dtm.policy,
            cfg.heatsink_temp,
            cfg.dtm.sample_interval,
            cfg.core.mem_latency,
            cfg.max_insts,
            cfg.max_cycles,
        );
        let (skipping, skip_duty) = run_flavor(cfg.clone(), bench, false, Some(true));
        let (plain, plain_duty) = run_flavor(cfg.clone(), bench, false, Some(false));
        let (reference, ref_duty) = run_flavor(cfg, bench, true, None);
        assert_byte_identical(&skipping, &plain, &format!("{what}: skip vs no-skip"));
        assert_byte_identical(&skipping, &reference, &format!("{what}: skip vs reference"));
        assert_eq!(skipping.gated_cycles, reference.gated_cycles, "{what}: gated cycles");
        assert_eq!(skip_duty, plain_duty, "{what}: skip vs no-skip duty");
        assert_eq!(skip_duty, ref_duty, "{what}: skip vs reference duty");
    });
}

#[test]
fn fully_gated_gaps_waking_on_sample_boundaries_are_byte_identical() {
    // At a 108 C heatsink the toggle policy engages at the first sample
    // and never releases, so every skipped window runs exactly to the
    // next DTM-sample boundary — the wake == boundary case. The cycle
    // cap then stops the run one cycle before a boundary, exactly on
    // one, and one cycle after.
    let interval = SimConfig::quick_test().dtm.sample_interval;
    for max_cycles in [40 * interval - 1, 40 * interval, 40 * interval + 1] {
        let mut cfg = hot_cfg(PolicyKind::Toggle1);
        cfg.heatsink_temp = 108.0;
        cfg.max_cycles = max_cycles;
        let what = format!("fully gated, max_cycles {max_cycles}");
        let (skipping, skip_duty) = run_flavor(cfg.clone(), "gcc", false, Some(true));
        let (plain, plain_duty) = run_flavor(cfg.clone(), "gcc", false, Some(false));
        let (reference, ref_duty) = run_flavor(cfg, "gcc", true, None);
        assert_eq!(skipping.total_cycles, max_cycles, "{what}: stops on the cap");
        assert!(skipping.gated_cycles > 0, "{what}: the run actually gated");
        assert_byte_identical(&skipping, &plain, &format!("{what}: skip vs no-skip"));
        assert_byte_identical(&skipping, &reference, &format!("{what}: skip vs reference"));
        assert_eq!(skip_duty, plain_duty, "{what}: duty skip vs no-skip");
        assert_eq!(skip_duty, ref_duty, "{what}: duty skip vs reference");
    }
}

#[test]
fn parked_multicore_chip_reports_are_byte_identical_with_skipping() {
    // Unthrottled neighbors finish their instruction budget and park
    // while the toggled core 0 keeps running — from then on the chip
    // loop opens parked-reason gaps. The skipping and non-skipping chip
    // runs must produce byte-identical ChipReports and duty histories.
    use tdtm::core::MulticoreSim;
    let mut cfg = hot_cfg(PolicyKind::Toggle1);
    cfg.chip.cores = 4;
    cfg.chip.neighbor_policy = Some(PolicyKind::None);
    let w = by_name("gcc").expect("suite workload");
    let run = |skip: bool| {
        let mut sim = MulticoreSim::for_workload(cfg.clone(), &w);
        sim.set_skip(skip);
        let report = sim.run();
        let duties: Vec<Vec<f64>> =
            (0..4).map(|k| sim.duty_history(k).to_vec()).collect();
        (report, duties)
    };
    let (skipping, skip_duty) = run(true);
    let (plain, plain_duty) = run(false);
    assert_eq!(skipping, plain, "parked chip: reports differ");
    assert_eq!(
        format!("{skipping:?}"),
        format!("{plain:?}"),
        "parked chip: bit patterns differ"
    );
    assert_eq!(skip_duty, plain_duty, "parked chip: duty histories differ");
}

#[test]
fn telemetry_never_perturbs_the_simulation() {
    // Telemetry collection routes through the reference loop; a plain run
    // takes the fast loop. The report must not notice.
    let (plain, plain_duty) = run_with(hot_cfg(PolicyKind::Pid), "gcc", false);
    let w = by_name("gcc").expect("suite workload");
    let mut sim = Simulator::for_workload(hot_cfg(PolicyKind::Pid), &w);
    sim.enable_telemetry(&TelemetryConfig::full(4096, 4));
    let observed = sim.run();
    assert_byte_identical(&plain, &observed, "telemetry on vs off");
    assert_eq!(plain_duty, sim.duty_history(), "telemetry on vs off duty");
    assert!(sim.telemetry().is_some(), "telemetry was collected");
}

#[test]
fn proxies_never_perturb_the_simulation_and_count_deterministically() {
    let run_proxied = || {
        let w = by_name("gcc").expect("suite workload");
        let mut sim = Simulator::for_workload(hot_cfg(PolicyKind::None), &w);
        sim.add_structure_proxy(10_000);
        sim.add_chipwide_proxy(10_000, 47.0);
        let report = sim.run();
        let counts: Vec<_> = sim.proxies().iter().map(|p| p.counts.clone()).collect();
        (report, counts)
    };
    let (r1, c1) = run_proxied();
    let (r2, c2) = run_proxied();
    assert_eq!(c1, c2, "agreement counts must be deterministic");
    assert_byte_identical(&r1, &r2, "proxied runs");

    // Attaching proxies forces the reference loop; the report must still
    // be byte-identical to the fast uninstrumented run.
    let (plain, _) = run_with(hot_cfg(PolicyKind::None), "gcc", false);
    assert_byte_identical(&plain, &r1, "proxies on vs off");
}

#[test]
fn trace_and_dtm_sampling_strides_are_asymmetric() {
    // Convention, pinned: a trace sample fires at the *start* of each
    // stride — on cycles where `cycle % stride == 0`, so the first is
    // cycle 0 — while a DTM sample fires at the *end* of each interval —
    // on cycles where `(cycle + 1) % interval == 0`, so the first is
    // cycle `interval - 1` and a trailing partial interval never samples.
    let cfg = hot_cfg(PolicyKind::Pid);
    let interval = cfg.dtm.sample_interval;
    let stride = 1_000u64;
    let w = by_name("gcc").expect("suite workload");
    let mut sim = Simulator::for_workload(cfg, &w);
    sim.record_trace(stride);
    let report = sim.run();
    let trace = sim.trace().expect("trace was recorded");

    let total = report.total_cycles;
    assert!(
        !total.is_multiple_of(interval),
        "need a partial trailing interval to discriminate the conventions (total {total})"
    );
    // Start-of-stride convention: samples at 0, stride, 2·stride, ...
    let expected: Vec<u64> = (0..total.div_ceil(stride)).map(|k| k * stride).collect();
    assert_eq!(trace.cycles, expected, "trace fires on cycle % stride == 0");
    // End-of-interval convention: one sample per *complete* interval.
    assert_eq!(
        report.samples,
        total / interval,
        "DTM fires on (cycle + 1) % interval == 0"
    );
    assert_eq!(report.samples, sim.duty_history().len() as u64);
}
