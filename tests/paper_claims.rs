//! Integration tests pinning the paper's qualitative claims, each tagged
//! with the section it reproduces.

use tdtm::control::design::{design_controller, ControllerKind, FopdtPlant};
use tdtm::core::experiments::{proxy_comparison, ExperimentScale};
use tdtm::core::{SimConfig, Simulator};
use tdtm::dtm::PolicyKind;
use tdtm::thermal::block_model::{table3_blocks, BlockModel};
use tdtm::thermal::chipwide::{ChipWideModel, ChipWideParams};
use tdtm::thermal::BoxcarProxy;
use tdtm::workloads::by_name;

/// Section 4.3: "localized heating occurs much faster — typically orders
/// of magnitude faster — than chip-wide heating."
#[test]
fn localized_heating_beats_chipwide_by_orders_of_magnitude() {
    let blocks = table3_blocks();
    let chip = ChipWideParams::paper_defaults();
    for b in &blocks {
        let ratio = chip.dominant_time_constant() / b.time_constant();
        assert!(ratio > 1e4, "{}: ratio {ratio:.0} should exceed 10^4", b.name);
    }
}

/// Section 6: a fast local burst drives a block into emergency while the
/// chip-wide model barely moves.
#[test]
fn chipwide_model_misses_local_emergencies() {
    let dt = 1.0 / 1.5e9;
    let mut local = BlockModel::new(table3_blocks(), 103.0, dt);
    let mut chip = ChipWideModel::new(ChipWideParams::paper_defaults(), 27.0);
    chip.set_temperatures(103.0, 95.0);

    // 300 us of a regfile-melting burst.
    let burst = [1.0, 2.0, 4.2, 1.0, 2.0, 3.0, 1.0];
    let cycles = (300e-6 / dt) as u64;
    for _ in 0..cycles {
        local.step(&burst);
        chip.step(45.0, dt);
    }
    assert!(local.any_above(111.0), "regfile should pass emergency locally");
    assert!(
        (chip.die_temperature() - 103.0).abs() < 1.0,
        "chip-wide moved {:.3} K, should be <1 K",
        chip.die_temperature() - 103.0
    );
}

/// Section 2.1/6: "heating is an exponential effect that a boxcar average
/// cannot capture" — a burst that heats a block past emergency leaves a
/// long-window boxcar average nearly untouched.
#[test]
fn boxcar_average_misses_exponential_bursts() {
    let dt = 1.0 / 1.5e9;
    let mut model = BlockModel::new(table3_blocks(), 103.0, dt);
    let mut boxcar = BoxcarProxy::new(500_000);
    let regfile = 2; // index in table3 order
    let r = model.params()[regfile].r;

    // Long idle prefix fills the window with low power.
    let idle = [0.5; 7];
    for _ in 0..500_000 {
        model.step(&idle);
        boxcar.push(idle[regfile]);
    }
    // 60 us burst (~0.7 tau): the block heats most of the way...
    let mut burst = idle;
    burst[regfile] = 4.2;
    for _ in 0..(60e-6 / dt) as u64 {
        model.step(&burst);
        boxcar.push(burst[regfile]);
    }
    let temp = model.temperatures()[regfile];
    assert!(temp > 108.0, "block heated to {temp:.2}");
    // ...while the 500K boxcar estimate still reads cold.
    let est = boxcar.average() * r + 103.0;
    assert!(
        temp - est > 2.0,
        "boxcar estimate {est:.2} should lag true temperature {temp:.2} by kelvins"
    );
}

/// Section 6 / Tables 9-10: on a real bursty workload, the long-window
/// proxy misses true emergency cycles.
#[test]
fn proxy_comparison_shows_missed_emergencies_on_bursty_runs() {
    let w = by_name("art").expect("suite");
    let scale = ExperimentScale { insts: 600_000, warmup_cycles: 20_000 };
    let (report, proxies) = proxy_comparison(&w, scale, &[500_000], &[], 47.0);
    if report.emergency_cycles == 0 {
        // Scale-dependent: at tiny scales art may not reach its burst.
        eprintln!("skipping: no emergencies at this scale");
        return;
    }
    let mut agg = tdtm::thermal::comparison::AgreementCounts::new();
    for (_, c) in &proxies[0].per_block {
        agg.merge(c);
    }
    assert!(
        agg.missed > 0,
        "a 500K-cycle boxcar should miss some of art's {} emergency cycles",
        report.emergency_cycles
    );
}

/// Section 3/7: the controllers hold the hottest block essentially at the
/// setpoint — within the 0.2 K margin to the emergency threshold.
#[test]
fn pid_holds_temperature_at_the_setpoint() {
    let w = by_name("apsi").expect("suite");
    let mut cfg = SimConfig {
        max_insts: 400_000,
        thermal_warmup_cycles: 50_000,
        ..SimConfig::default()
    };
    cfg.dtm.policy = PolicyKind::Pid;
    let mut sim = Simulator::for_workload(cfg.clone(), &w);
    let r = sim.run();
    assert_eq!(r.emergency_cycles, 0, "never enter thermal emergency");
    let hottest = r.hottest_block().expect("seven blocks");
    assert!(
        hottest.max_temp <= cfg.dtm.emergency,
        "{} peaked at {:.2}",
        hottest.name,
        hottest.max_temp
    );
    assert!(
        hottest.max_temp > cfg.dtm.setpoint - 0.5,
        "control should ride near the setpoint, peaked at {:.2}",
        hottest.max_temp
    );
}

/// Section 3.2: the controller design methodology yields stable loops for
/// every thermal block's plant, not just the longest-tau one.
#[test]
fn designs_are_stable_for_every_block_plant() {
    use tdtm::control::stability::{margins, routh_hurwitz};
    for b in table3_blocks() {
        let plant = FopdtPlant { gain: 8.0, time_constant: b.time_constant(), delay: 333e-9 };
        for kind in [ControllerKind::P, ControllerKind::Pi, ControllerKind::Pid] {
            let gains = design_controller(&plant, kind);
            let ol = gains.transfer_function().series(&plant.transfer_function());
            assert!(
                routh_hurwitz(&ol.pade1().characteristic_polynomial()).is_stable(),
                "{}/{kind:?} unstable",
                b.name
            );
            let m = margins(&ol, 1.0, 1e10);
            assert!(m.phase_margin.to_degrees() > 45.0, "{}/{kind:?}: {m:?}", b.name);
        }
    }
}

/// Section 5.3: the actuator exposes eight evenly spaced toggling levels,
/// and the M controller's mapping matches the paper's example (50% error
/// → toggle2).
#[test]
fn actuator_levels_and_manual_mapping() {
    use tdtm::dtm::{build_policy, DtmConfig};
    let cfg = DtmConfig { policy: PolicyKind::Manual, ..DtmConfig::default() };
    let mut m = build_policy(&cfg);
    let mut temps = [103.0f64; 7];
    temps[3] = 110.0; // halfway through the 109..111 range
    let cmd = m.sample(&temps);
    assert_eq!(cmd.fetch_duty, 0.5, "50% error must map to toggle2");
}
