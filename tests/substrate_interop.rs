//! Cross-crate contract tests: the calibration assumptions that make the
//! layered model hang together (power peaks ↔ thermal resistances ↔ DTM
//! thresholds ↔ controller plant model).

use tdtm::control::design::FopdtPlant;
use tdtm::dtm::DtmConfig;
use tdtm::power::{PowerConfig, PowerModel};
use tdtm::thermal::block_model::table3_blocks;
use tdtm::thermal::SiliconProperties;
use tdtm::uarch::activity::THERMAL_BLOCKS;
use tdtm::uarch::CoreConfig;

/// The paper's whole premise requires every thermally tracked structure to
/// be *able* to exceed the emergency threshold at peak activity, and none
/// to exceed it at idle — otherwise its benchmark categories can't exist.
#[test]
fn peak_power_and_thermal_r_bracket_the_emergency_threshold() {
    let power = PowerModel::new(&PowerConfig::default(), &CoreConfig::alpha21264_like());
    let dtm = DtmConfig::default();
    let heatsink = 103.0;
    for (params, hw) in table3_blocks().iter().zip(THERMAL_BLOCKS) {
        let peak_delta = power.peak(hw) * params.r;
        let idle_delta = 0.1 * power.peak(hw) * params.r; // cc3 idle floor
        assert!(
            heatsink + peak_delta > dtm.emergency,
            "{}: peak steady state {:.1} C cannot reach the {:.1} C threshold",
            params.name,
            heatsink + peak_delta,
            dtm.emergency
        );
        assert!(
            heatsink + idle_delta < dtm.trigger,
            "{}: idle steady state {:.1} C must sit below the trigger",
            params.name,
            heatsink + idle_delta
        );
    }
}

/// The DTM config's plant model must describe the actual thermal blocks:
/// tau is the longest block RC (the paper's rule) and the gain is in the
/// band of peak-power × R across blocks.
#[test]
fn dtm_plant_model_matches_the_thermal_substrate() {
    let dtm = DtmConfig::default();
    let blocks = table3_blocks();
    let longest_tau =
        blocks.iter().map(|b| b.time_constant()).fold(0.0f64, f64::max);
    assert!(
        (dtm.plant_tau - longest_tau).abs() / longest_tau < 0.05,
        "plant tau {} vs longest block tau {}",
        dtm.plant_tau,
        longest_tau
    );

    let power = PowerModel::new(&PowerConfig::default(), &CoreConfig::alpha21264_like());
    let deltas: Vec<f64> = blocks
        .iter()
        .zip(THERMAL_BLOCKS)
        .map(|(b, hw)| power.peak(hw) * b.r)
        .collect();
    let lo = deltas.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (lo * 0.8..=hi * 1.2).contains(&dtm.plant_gain),
        "plant gain {} outside the blocks' controllable-swing band [{lo:.1}, {hi:.1}]",
        dtm.plant_gain
    );

    // And the designed loop must be stable for that plant.
    let plant = FopdtPlant {
        gain: dtm.plant_gain,
        time_constant: dtm.plant_tau,
        delay: dtm.loop_delay(1.5e9),
    };
    let gains =
        tdtm::control::design::design_controller(&plant, tdtm::control::design::ControllerKind::Pid);
    let ol = gains.transfer_function().series(&plant.transfer_function());
    assert!(tdtm::control::stability::routh_hurwitz(&ol.pade1().characteristic_polynomial())
        .is_stable());
}

/// Table 3 consistency: the thermal parameters in `tdtm-thermal` derive
/// from the same silicon constants and areas everywhere.
#[test]
fn table3_parameters_are_internally_consistent() {
    let si = SiliconProperties::effective();
    for b in table3_blocks() {
        assert!((b.r - si.r_normal(b.area).0).abs() < 1e-12, "{}", b.name);
        assert!((b.c - si.c_block(b.area).0).abs() < 1e-15, "{}", b.name);
        assert!(
            (b.time_constant() - si.block_time_constant().0).abs() < 1e-12,
            "{}: tau must equal the material identity rho·c_v·t^2",
            b.name
        );
    }
}

/// The stress threshold used in metrics is exactly 1 K under emergency
/// (the paper's Table 4 pairing), and the CT setpoint sits between the
/// non-CT trigger and the emergency level.
#[test]
fn threshold_ordering_is_the_papers() {
    let d = DtmConfig::default();
    assert!(d.trigger < d.setpoint && d.setpoint < d.emergency);
    assert!((d.emergency - d.setpoint - 0.2).abs() < 1e-9);
    assert!((d.emergency - d.trigger - 2.0).abs() < 1e-9);
    assert!(d.backup_trigger > d.setpoint && d.backup_trigger < d.emergency);
}

/// Sampling is far below the thermal time scale — the premise of the
/// paper's continuous-domain controller design.
#[test]
fn sampling_is_quasi_continuous() {
    let d = DtmConfig::default();
    let period = d.sample_period(1.5e9);
    assert!(
        d.plant_tau / period > 100.0,
        "thermal tau must dwarf the sampling period ({} vs {period})",
        d.plant_tau
    );
}
