//! The engine's determinism contract: a sharded experiment grid must
//! produce byte-identical results for any worker count (`TDTM_THREADS=1`
//! reproduces `TDTM_THREADS=N`), and every enumerated cell must be run
//! exactly once.

use tdtm::core::engine::{shard_map, ExperimentGrid};
use tdtm::core::experiments::ExperimentScale;
use tdtm::core::report::reports_to_csv;
use tdtm::core::SimConfig;
use tdtm::dtm::{PolicyKind, SupervisorConfig};
use tdtm::workloads::by_name;

/// One single-core cell family plus a supervised two-core chip variant,
/// so the determinism contract covers the multicore dispatch path too.
fn small_grid() -> ExperimentGrid {
    fn chip2(cfg: &mut SimConfig) {
        cfg.chip.cores = 2;
        cfg.chip.supervisor = Some(SupervisorConfig::default());
    }
    ExperimentGrid::new(ExperimentScale::quick())
        .workload(by_name("gcc").expect("suite workload"))
        .workload(by_name("art").expect("suite workload"))
        .workload(by_name("crafty").expect("suite workload"))
        .policies(&[PolicyKind::None, PolicyKind::Pid])
        .variants(&[("base", |_| {}), ("chip2", chip2)])
}

#[test]
fn one_thread_reproduces_many_threads_byte_for_byte() {
    let grid = small_grid();
    let serial = grid.run_threads(1);
    let parallel = grid.run_threads(4);
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);

    // The scientific results are identical down to the serialized bytes;
    // only the host-side timing observability may differ.
    let csv_serial = reports_to_csv(&serial.reports());
    let csv_parallel = reports_to_csv(&parallel.reports());
    assert_eq!(csv_serial, csv_parallel, "thread count must not leak into results");
    for (a, b) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(a.report, b.report, "cell {} diverged across thread counts", a.label());
        assert_eq!(a.obs.thermal_steps, b.obs.thermal_steps);
        assert_eq!(a.obs.committed, b.obs.committed);
        assert_eq!(a.obs.dtm_samples, b.obs.dtm_samples);
    }
}

#[test]
fn batched_dispatch_reports_byte_identically_to_the_per_cell_path() {
    // `run_threads` packs eligible single-core cells into SoA thermal
    // batches; `small_grid` mixes them with supervised two-core chip
    // cells that must fall back to the per-cell path. Whatever the
    // dispatch, the reports are byte-identical (the Debug rendering
    // distinguishes every bit pattern short of NaN).
    let grid = small_grid();
    let batched = grid.run_threads_with_batching(4, true);
    let reference = grid.run_threads_with_batching(1, false);
    assert_eq!(batched.runs.len(), reference.runs.len());
    for (b, r) in batched.runs.iter().zip(&reference.runs) {
        assert_eq!(b.index, r.index);
        assert_eq!(b.report, r.report, "cell {} diverged under batching", b.label());
        assert_eq!(
            format!("{:?}", b.report),
            format!("{:?}", r.report),
            "cell {}: bit patterns differ under batching",
            b.label()
        );
        assert!(b.obs.deterministic_eq(&r.obs), "cell {}: observability diverged", b.label());
    }
}

#[test]
fn per_run_observability_is_populated() {
    let results = small_grid().run_threads(2);
    for run in &results.runs {
        assert!(run.obs.wall_seconds > 0.0, "{}: wall clock missing", run.label());
        assert!(run.obs.cycles_per_second() > 0.0, "{}: throughput missing", run.label());
        assert!(run.obs.thermal_steps >= run.report.cycles);
        assert!(run.obs.committed >= 30_000, "{}: quick scale retires >=30k", run.label());
        assert!(run.obs.dtm_samples > 0, "{}: the controller must be invoked", run.label());
    }
    assert!(results.wall_seconds > 0.0);
}

#[test]
fn every_cell_appears_exactly_once() {
    // Property-style sweep over randomly shaped grids: the enumeration
    // must cover the full cross product with stable, gapless indices, and
    // an executed grid must return exactly one result per cell, in order.
    let names = ["gcc", "art", "crafty", "mesa", "gzip"];
    let policy_pool =
        [PolicyKind::None, PolicyKind::Toggle1, PolicyKind::Pid, PolicyKind::Throttle];
    tdtm_prng::cases(16, 0x5eed_e791, |rng| {
        let n_workloads = 1 + rng.index(3);
        let n_policies = 1 + rng.index(policy_pool.len() - 1);
        let start = rng.index(names.len());
        let mut grid = ExperimentGrid::new(ExperimentScale::quick());
        // Consecutive names from a random start: distinct by construction.
        for k in 0..n_workloads {
            grid = grid.workload(by_name(names[(start + k) % names.len()]).unwrap());
        }
        let policies: Vec<PolicyKind> = policy_pool[..n_policies].to_vec();
        grid = grid.policies(&policies);

        let cells = grid.cells();
        assert_eq!(cells.len(), n_workloads * n_policies);
        let mut labels: Vec<String> = cells.iter().map(|c| c.label()).collect();
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i, "indices must be gapless and in order");
        }
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cells.len(), "no duplicate cells");
    });

    // Execute one shaped grid and check the run-once property end to end:
    // results come back one per cell, in cell order, with matching labels.
    let grid = small_grid();
    let cells = grid.cells();
    let results = grid.run_threads(3);
    assert_eq!(results.runs.len(), cells.len());
    for (cell, run) in cells.iter().zip(&results.runs) {
        assert_eq!(run.index, cell.index);
        assert_eq!(run.label(), cell.label());
        assert_eq!(run.report.name, cell.workload.name);
        assert_eq!(run.report.policy, cell.policy.to_string());
    }
}

#[test]
fn shard_map_runs_each_item_once_under_contention() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
    let items: Vec<usize> = (0..100).collect();
    let out = shard_map(&items, 8, |i, &x| {
        hits[x].fetch_add(1, Ordering::SeqCst);
        i
    });
    assert_eq!(out, items, "results keyed by item index");
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::SeqCst), 1, "item {i} must run exactly once");
    }
}
