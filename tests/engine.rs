//! The engine's determinism contract: a sharded experiment grid must
//! produce byte-identical results for any worker count (`TDTM_THREADS=1`
//! reproduces `TDTM_THREADS=N`), and every enumerated cell must be run
//! exactly once.

use tdtm::core::engine::{shard_map, ExperimentGrid};
use tdtm::core::experiments::ExperimentScale;
use tdtm::core::report::reports_to_csv;
use tdtm::core::{ResultCache, SimConfig};
use tdtm::dtm::{PolicyKind, SupervisorConfig};
use tdtm::workloads::by_name;

/// One single-core cell family plus a supervised two-core chip variant,
/// so the determinism contract covers the multicore dispatch path too.
fn small_grid() -> ExperimentGrid {
    fn chip2(cfg: &mut SimConfig) {
        cfg.chip.cores = 2;
        cfg.chip.supervisor = Some(SupervisorConfig::default());
    }
    ExperimentGrid::new(ExperimentScale::quick())
        .workload(by_name("gcc").expect("suite workload"))
        .workload(by_name("art").expect("suite workload"))
        .workload(by_name("crafty").expect("suite workload"))
        .policies(&[PolicyKind::None, PolicyKind::Pid])
        .variants(&[("base", |_| {}), ("chip2", chip2)])
}

#[test]
fn one_thread_reproduces_many_threads_byte_for_byte() {
    // Explicitly uncached: with the default-on result cache, a second
    // `run_threads` call would replay the first run's reports and this
    // test would stop exercising thread-count determinism.
    let grid = small_grid();
    let serial = grid.run_threads_with_batching(1, true);
    let parallel = grid.run_threads_with_batching(4, true);
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);

    // The scientific results are identical down to the serialized bytes;
    // only the host-side timing observability may differ.
    let csv_serial = reports_to_csv(&serial.reports());
    let csv_parallel = reports_to_csv(&parallel.reports());
    assert_eq!(csv_serial, csv_parallel, "thread count must not leak into results");
    for (a, b) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(a.report, b.report, "cell {} diverged across thread counts", a.label());
        assert_eq!(a.obs.thermal_steps, b.obs.thermal_steps);
        assert_eq!(a.obs.committed, b.obs.committed);
        assert_eq!(a.obs.dtm_samples, b.obs.dtm_samples);
    }
}

#[test]
fn batched_dispatch_reports_byte_identically_to_the_per_cell_path() {
    // `run_threads` packs eligible single-core cells into SoA thermal
    // batches; `small_grid` mixes them with supervised two-core chip
    // cells that must fall back to the per-cell path. Whatever the
    // dispatch, the reports are byte-identical (the Debug rendering
    // distinguishes every bit pattern short of NaN).
    let grid = small_grid();
    let batched = grid.run_threads_with_batching(4, true);
    let reference = grid.run_threads_with_batching(1, false);
    assert_eq!(batched.runs.len(), reference.runs.len());
    for (b, r) in batched.runs.iter().zip(&reference.runs) {
        assert_eq!(b.index, r.index);
        assert_eq!(b.report, r.report, "cell {} diverged under batching", b.label());
        assert_eq!(
            format!("{:?}", b.report),
            format!("{:?}", r.report),
            "cell {}: bit patterns differ under batching",
            b.label()
        );
        assert!(b.obs.deterministic_eq(&r.obs), "cell {}: observability diverged", b.label());
    }
}

#[test]
fn per_run_observability_is_populated() {
    let results = small_grid().run_threads(2);
    for run in &results.runs {
        assert!(run.obs.wall_seconds > 0.0, "{}: wall clock missing", run.label());
        assert!(run.obs.cycles_per_second() > 0.0, "{}: throughput missing", run.label());
        assert!(run.obs.thermal_steps >= run.report.cycles);
        assert!(run.obs.committed >= 30_000, "{}: quick scale retires >=30k", run.label());
        assert!(run.obs.dtm_samples > 0, "{}: the controller must be invoked", run.label());
    }
    assert!(results.wall_seconds > 0.0);
}

#[test]
fn every_cell_appears_exactly_once() {
    // Property-style sweep over randomly shaped grids: the enumeration
    // must cover the full cross product with stable, gapless indices, and
    // an executed grid must return exactly one result per cell, in order.
    let names = ["gcc", "art", "crafty", "mesa", "gzip"];
    let policy_pool =
        [PolicyKind::None, PolicyKind::Toggle1, PolicyKind::Pid, PolicyKind::Throttle];
    tdtm_prng::cases(16, 0x5eed_e791, |rng| {
        let n_workloads = 1 + rng.index(3);
        let n_policies = 1 + rng.index(policy_pool.len() - 1);
        let start = rng.index(names.len());
        let mut grid = ExperimentGrid::new(ExperimentScale::quick());
        // Consecutive names from a random start: distinct by construction.
        for k in 0..n_workloads {
            grid = grid.workload(by_name(names[(start + k) % names.len()]).unwrap());
        }
        let policies: Vec<PolicyKind> = policy_pool[..n_policies].to_vec();
        grid = grid.policies(&policies);

        let cells = grid.cells();
        assert_eq!(cells.len(), n_workloads * n_policies);
        let mut labels: Vec<String> = cells.iter().map(|c| c.label()).collect();
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i, "indices must be gapless and in order");
        }
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cells.len(), "no duplicate cells");
    });

    // Execute one shaped grid and check the run-once property end to end:
    // results come back one per cell, in cell order, with matching labels.
    let grid = small_grid();
    let cells = grid.cells();
    let results = grid.run_threads(3);
    assert_eq!(results.runs.len(), cells.len());
    for (cell, run) in cells.iter().zip(&results.runs) {
        assert_eq!(run.index, cell.index);
        assert_eq!(run.label(), cell.label());
        assert_eq!(run.report.name, cell.workload.name);
        assert_eq!(run.report.policy, cell.policy.to_string());
    }
}

#[test]
fn cached_rerun_replays_byte_identical_reports() {
    // One explicit cache shared by two runs of the same grid: the first
    // run misses every cell and publishes, the second replays everything
    // from memory. Both must be bit-identical to the uncached reference
    // path (the Debug rendering distinguishes every bit pattern short
    // of NaN).
    let grid = small_grid();
    let cache = ResultCache::in_memory();
    let reference = grid.run_threads_with_batching(1, false);
    let cold = grid.run_threads_cached(4, true, &cache);
    let warm = grid.run_threads_cached(4, true, &cache);

    let n = reference.runs.len() as u64;
    let cold_stats = cold.cache_stats.expect("cached run reports stats");
    assert_eq!((cold_stats.cache_hits, cold_stats.cache_misses), (0, n));
    let warm_stats = warm.cache_stats.expect("cached run reports stats");
    assert_eq!((warm_stats.cache_hits, warm_stats.cache_misses), (n, 0));
    assert_eq!(warm_stats.hit_rate(), Some(1.0));

    for (r, c, w) in reference.runs.iter().zip(&cold.runs).zip(&warm.runs).map(|((a, b), c)| (a, b, c)) {
        assert_eq!(r.index, c.index);
        assert_eq!(r.index, w.index);
        assert_eq!(
            format!("{:?}", r.report),
            format!("{:?}", c.report),
            "cell {}: cold cached run diverged from the uncached reference",
            r.label()
        );
        assert_eq!(
            format!("{:?}", r.report),
            format!("{:?}", w.report),
            "cell {}: warm replay diverged from the uncached reference",
            r.label()
        );
        assert!(w.obs.wall_seconds > 0.0, "replayed cells still carry a wall clock");
    }
}

#[test]
fn identical_cells_within_a_grid_simulate_once() {
    // Two variants with byte-identical configs fingerprint identically:
    // the engine claims the first as leader, marks the twin a follower,
    // and simulates only once. The follower replays the leader's report
    // under its own label.
    let grid = ExperimentGrid::new(ExperimentScale::quick())
        .workload(by_name("gcc").expect("suite workload"))
        .policies(&[PolicyKind::None, PolicyKind::Pid])
        .variants(&[("base", |_| {}), ("twin", |_| {})]);
    let cache = ResultCache::in_memory();
    let results = grid.run_threads_cached(4, true, &cache);
    let stats = results.cache_stats.expect("cached run reports stats");
    assert_eq!(stats.cache_misses, 2, "one simulation per distinct fingerprint");
    assert_eq!(stats.cache_hits, 2, "each twin replays its leader");
    assert_eq!(stats.cache_inflight_waits, 2);
    assert_eq!(results.runs.len(), 4);
    for run in &results.runs {
        let leader = results
            .runs
            .iter()
            .find(|r| r.report.policy == run.report.policy && r.index != run.index)
            .expect("every cell has a twin");
        assert_eq!(
            format!("{:?}", run.report),
            format!("{:?}", leader.report),
            "twin cells must carry identical reports"
        );
    }
}

#[test]
fn shard_map_runs_each_item_once_under_contention() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
    let items: Vec<usize> = (0..100).collect();
    let out = shard_map(&items, 8, |i, &x| {
        hits[x].fetch_add(1, Ordering::SeqCst);
        i
    });
    assert_eq!(out, items, "results keyed by item index");
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::SeqCst), 1, "item {i} must run exactly once");
    }
}
