//! Cross-crate integration tests: the full stack (ISA → functional →
//! timing → power → thermal → DTM) on real workloads, at test scale.

use tdtm::core::experiments::{compare_policies, ExperimentScale};
use tdtm::core::{SimConfig, Simulator};
use tdtm::dtm::PolicyKind;
use tdtm::workloads::by_name;

fn scale() -> ExperimentScale {
    ExperimentScale { insts: 150_000, warmup_cycles: 10_000 }
}

#[test]
fn hot_workload_overheats_without_dtm() {
    let w = by_name("gcc").expect("suite");
    let mut sim = Simulator::for_workload(scale().config(PolicyKind::None), &w);
    let r = sim.run();
    assert!(r.emergency_cycles > 0, "gcc must overheat without DTM");
    assert!(r.ipc > 2.0, "gcc is a high-IPC kernel, got {}", r.ipc);
}

#[test]
fn cool_workload_never_triggers_anything() {
    let w = by_name("twolf").expect("suite");
    let mut sim = Simulator::for_workload(scale().config(PolicyKind::Pid), &w);
    let r = sim.run();
    assert_eq!(r.emergency_cycles, 0);
    assert_eq!(r.engaged_samples, 0, "PID should never engage on a cool chase");
    assert!(r.ipc < 1.0, "pointer chase is slow, got {}", r.ipc);
}

#[test]
fn every_policy_eliminates_emergencies_on_gcc() {
    let w = by_name("gcc").expect("suite");
    let policies = [
        PolicyKind::Toggle1,
        PolicyKind::Manual,
        PolicyKind::P,
        PolicyKind::Pi,
        PolicyKind::Pid,
    ];
    let cmp = compare_policies(&w, scale(), &policies);
    assert!(cmp.baseline.emergency_cycles > 0, "baseline must overheat");
    for run in &cmp.runs {
        assert_eq!(
            run.emergency_cycles, 0,
            "{} left {} emergency cycles",
            run.policy, run.emergency_cycles
        );
    }
}

#[test]
fn ct_dtm_beats_fixed_toggling_on_performance() {
    // The paper's headline, at test scale, on one extreme benchmark.
    let w = by_name("bzip2").expect("suite");
    let cmp = compare_policies(&w, scale(), &[PolicyKind::Toggle1, PolicyKind::Pid]);
    let toggle1 = cmp.percent_of_baseline(PolicyKind::Toggle1).expect("ran");
    let pid = cmp.percent_of_baseline(PolicyKind::Pid).expect("ran");
    assert!(
        pid > toggle1,
        "PID ({pid:.1}%) must outperform toggle1 ({toggle1:.1}%) while protecting the chip"
    );
}

#[test]
fn dtm_never_exceeds_baseline_performance() {
    let w = by_name("mesa").expect("suite");
    let cmp = compare_policies(
        &w,
        scale(),
        &[PolicyKind::Toggle1, PolicyKind::Toggle2, PolicyKind::Pid],
    );
    for run in &cmp.runs {
        let pct = run.percent_of(&cmp.baseline);
        assert!(pct <= 100.0 + 0.5, "{}: {pct:.2}% of baseline is impossible", run.policy);
    }
}

#[test]
fn architectural_results_are_timing_independent() {
    // The same program produces the same outputs under aggressive DTM as
    // under none: DTM slows the machine, never corrupts it.
    let program = tdtm::isa::asm::assemble_named(
        "     li x1, 200
              li x5, 0
         l:   add x5, x5, x1
              addi x1, x1, -1
              bne x1, x0, l
              out x5
              halt",
        "sumloop",
    )
    .expect("assembles");
    let mut cfg = SimConfig::quick_test();
    cfg.max_insts = 10_000;
    let mut plain = Simulator::new(cfg.clone(), program.clone());
    plain.run();

    let mut gated_cfg = cfg;
    gated_cfg.dtm.policy = PolicyKind::Toggle2;
    gated_cfg.dtm.trigger = 0.0; // always triggered
    let mut gated = Simulator::new(gated_cfg, program);
    gated.run();
}
