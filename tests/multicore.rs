//! The multicore chip simulator's contracts.
//!
//! Three pins from the chip tentpole (see DESIGN.md):
//!
//! 1. **N = 1 degeneracy** — a one-core chip with no supervisor produces
//!    a core-0 report byte-identical to the single-core `Simulator`, for
//!    every policy family including V/f scaling and the new
//!    retrieved-literature controllers.
//! 2. **Interference is real** — an unthrottled hot neighbor raises the
//!    throttled core's peak block temperature versus the same chip with
//!    coupling disabled, and more strongly at higher coupling.
//! 3. **Hierarchical DTM is deterministic** — supervisor plus the new
//!    policies run end-to-end across core counts 1/2/4 through the
//!    experiment engine with byte-identical results at any thread count.

use tdtm::core::engine::ExperimentGrid;
use tdtm::core::experiments::ExperimentScale;
use tdtm::core::{MulticoreSim, RunReport, SimConfig, Simulator};
use tdtm::dtm::{PolicyKind, SupervisorConfig};
use tdtm::workloads::by_name;

/// Byte-level equality (see `tests/hot_loop_identity.rs`): `PartialEq`
/// plus the shortest-roundtrip debug rendering, which distinguishes every
/// bit pattern short of NaN.
fn assert_byte_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a, b, "{what}: reports differ");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}: bit patterns differ");
}

fn hot_cfg(policy: PolicyKind) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.max_insts = 120_000;
    cfg.heatsink_temp = 107.0;
    cfg.dtm.policy = policy;
    cfg
}

#[test]
fn one_core_chip_is_byte_identical_to_the_single_core_simulator() {
    let w = by_name("gcc").expect("suite workload");
    for policy in [
        PolicyKind::None,
        PolicyKind::Pid,
        PolicyKind::VfScale,
        PolicyKind::AdaptiveI,
        PolicyKind::StabilityAware,
    ] {
        let cfg = hot_cfg(policy);
        let mut single = Simulator::for_workload(cfg.clone(), &w);
        let expected = single.run();

        let mut chip_sim = MulticoreSim::for_workload(cfg, &w);
        let chip = chip_sim.run();
        assert_eq!(chip.cores.len(), 1);
        assert!(!chip.coupled, "one core has no coupling edges");
        assert_eq!(chip.supervisor_interventions, 0);
        assert_byte_identical(&expected, &chip.cores[0], &format!("policy {policy:?}"));
        assert_eq!(
            single.duty_history(),
            chip_sim.duty_history(0),
            "policy {policy:?}: duty histories differ"
        );
    }
}

/// The tentpole's observable, at the simulator level: run a permanently
/// throttled core 0 (Toggle1 with the trigger below the heatsink, so its
/// duty pins to zero and no feedback can mask the effect) next to an
/// unthrottled hot neighbor, and compare its peak block temperature with
/// the thermally disconnected chip.
#[test]
fn hot_neighbor_raises_the_throttled_cores_peak_temperature() {
    let core0_peak = |coupling: f64| -> f64 {
        let mut cfg = SimConfig::quick_test();
        cfg.heatsink_temp = 107.0;
        cfg.dtm.policy = PolicyKind::Toggle1;
        cfg.dtm.trigger = 104.0; // below the heatsink: engaged from cycle one
        cfg.max_insts = 30_000;
        cfg.max_cycles = 60_000; // the gated core parks here
        cfg.thermal_warmup_cycles = 2_000;
        cfg.chip.cores = 2;
        cfg.chip.coupling = coupling;
        cfg.chip.neighbor_policy = Some(PolicyKind::None);
        let w = by_name("gcc").expect("suite workload");
        let chip = MulticoreSim::for_workload(cfg, &w).run();
        assert_eq!(chip.cores[1].policy, "none", "the neighbor must run unthrottled");
        chip.cores[0]
            .blocks
            .iter()
            .map(|b| b.max_temp)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let isolated = core0_peak(0.0);
    let coupled = core0_peak(1.0);
    let strong = core0_peak(4.0);
    assert!(
        coupled > isolated + 1e-6,
        "the hot neighbor must leak into the throttled core: {coupled} vs {isolated}"
    );
    assert!(
        strong > coupled + 1e-6,
        "stronger coupling must leak more: {strong} vs {coupled}"
    );
}

/// Hierarchical DTM end-to-end: the supervisor over the per-core
/// policies — including both retrieved-literature controllers — across
/// core counts 1, 2, and 4, through the experiment engine, with
/// byte-identical reports and chip reports at any worker-thread count.
#[test]
fn supervised_chips_are_thread_count_invariant_across_core_counts() {
    fn supervised(cfg: &mut SimConfig, cores: usize) {
        cfg.max_insts = 10_000;
        cfg.thermal_warmup_cycles = 500;
        cfg.heatsink_temp = 107.0;
        cfg.chip.cores = cores;
        cfg.chip.supervisor = Some(SupervisorConfig::default());
    }
    let grid = ExperimentGrid::new(ExperimentScale::quick())
        .workload(by_name("gcc").expect("suite workload"))
        .policies(&[PolicyKind::Pid, PolicyKind::AdaptiveI, PolicyKind::StabilityAware])
        .variants(&[
            ("1core", |cfg: &mut SimConfig| supervised(cfg, 1)),
            ("2core", |cfg: &mut SimConfig| supervised(cfg, 2)),
            ("4core", |cfg: &mut SimConfig| supervised(cfg, 4)),
        ]);
    let serial = grid.run_with_threads(1, |cell| cell.run_chip());
    let parallel = grid.run_with_threads(4, |cell| cell.run_chip());
    assert_eq!(serial.runs.len(), 3 * 3);
    for (a, b) in serial.runs.iter().zip(&parallel.runs) {
        assert_byte_identical(&a.report, &b.report, &a.label());
        assert_eq!(
            format!("{:?}", a.extra),
            format!("{:?}", b.extra),
            "{}: chip reports diverged across thread counts",
            a.label()
        );
        let chip = a.extra.as_ref().expect("every supervised cell runs the chip simulator");
        let expected_cores = match a.variant {
            "1core" => 1,
            "2core" => 2,
            "4core" => 4,
            v => panic!("unknown variant {v}"),
        };
        assert_eq!(chip.cores.len(), expected_cores, "{}", a.label());
        assert_eq!(chip.cores[0], a.report, "{}: report must be core 0's", a.label());
        assert!(chip.cores[0].samples > 0, "{}: the per-core policy must sample", a.label());
    }
}
