//! Property-based tests (proptest) on core data structures and
//! invariants across the workspace.

use proptest::prelude::*;
use tdtm::control::design::PidGains;
use tdtm::control::pid::{quantize, PidController};
use tdtm::isa::encoding::{decode, encode};
use tdtm::isa::{FReg, Inst, Op, Reg};
use tdtm::thermal::block_model::{table3_blocks, BlockModel};
use tdtm::thermal::BoxcarProxy;
use tdtm::uarch::FetchGate;

fn arb_op() -> impl Strategy<Value = Op> {
    let all = Op::all();
    (0..all.len()).prop_map(move |i| all[i])
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    (arb_op(), 0u8..32, 0u8..32, 0u8..32, any::<i32>()).prop_map(|(op, a, b, c, imm)| Inst {
        op,
        rd: Reg::new(a),
        rs1: Reg::new(b),
        rs2: Reg::new(c),
        fd: FReg::new(a),
        fs1: FReg::new(b),
        fs2: FReg::new(c),
        imm,
    })
}

proptest! {
    /// Encoding is lossless for the operand fields each opcode uses.
    #[test]
    fn encoding_round_trips(inst in arb_inst()) {
        let e = encode(&inst);
        let back = decode(e.word, e.ext).expect("own encodings decode");
        // Round-trip again: the decoded form is canonical (unused fields
        // zeroed), so a second round trip must be exact.
        let e2 = encode(&back);
        let back2 = decode(e2.word, e2.ext).expect("decodes");
        prop_assert_eq!(back, back2);
        prop_assert_eq!(back2.op, inst.op);
        prop_assert_eq!(back2.imm, inst.imm);
    }

    /// The fetch gate delivers exactly floor-or-ceiling of duty × cycles.
    #[test]
    fn fetch_gate_duty_accounting(level in 0u32..=8, cycles in 1usize..4096) {
        let duty = level as f64 / 8.0;
        let mut gate = FetchGate::with_duty(duty);
        let enabled = (0..cycles).filter(|_| gate.tick()).count() as f64;
        let expected = duty * cycles as f64;
        prop_assert!((enabled - expected).abs() <= 1.0,
            "duty {duty}: {enabled} enabled of {cycles} (expected ~{expected})");
    }

    /// Quantization stays within the actuator range and on the grid.
    #[test]
    fn quantize_is_on_grid(cmd in -10.0f64..10.0, levels in 1u32..=32) {
        let q = quantize(cmd, levels);
        prop_assert!((0.0..=1.0).contains(&q));
        let steps = q * levels as f64;
        prop_assert!((steps - steps.round()).abs() < 1e-9);
    }

    /// PID output always respects the actuator limits, whatever the error
    /// sequence.
    #[test]
    fn pid_output_always_clamped(errors in prop::collection::vec(-50.0f64..50.0, 1..200)) {
        let gains = PidGains { kp: 3.0, ki: 1000.0, kd: 1e-4 };
        let mut pid = PidController::new(gains, 667e-9, 0.0, 1.0);
        for e in errors {
            let u = pid.sample(e);
            prop_assert!((0.0..=1.0).contains(&u), "output {u} out of range");
            prop_assert!(pid.integral() >= 0.0, "paper rule: integral never negative");
        }
    }

    /// Thermal monotonicity: more power never yields a lower temperature
    /// (same initial state, same step count).
    #[test]
    fn thermal_step_is_monotone_in_power(
        p in prop::collection::vec(0.0f64..15.0, 7),
        extra in 0.1f64..5.0,
        steps in 1usize..500,
    ) {
        let dt = 1e-6;
        let mut low = BlockModel::new(table3_blocks(), 103.0, dt);
        let mut high = BlockModel::new(table3_blocks(), 103.0, dt);
        let p_low: Vec<f64> = p.clone();
        let p_high: Vec<f64> = p.iter().map(|x| x + extra).collect();
        for _ in 0..steps {
            low.step(&p_low);
            high.step(&p_high);
        }
        for i in 0..7 {
            prop_assert!(high.temperatures()[i] >= low.temperatures()[i]);
        }
    }

    /// Block temperature never exceeds the hottest steady state reachable
    /// from the applied powers, and never drops below the heatsink.
    #[test]
    fn thermal_state_is_bounded(
        powers in prop::collection::vec(prop::collection::vec(0.0f64..20.0, 7), 1..100),
    ) {
        let dt = 1e-6;
        let mut m = BlockModel::new(table3_blocks(), 103.0, dt);
        let mut max_ss = [103.0f64; 7];
        for p in &powers {
            m.step(p);
            for i in 0..7 {
                max_ss[i] = max_ss[i].max(m.steady_state(i, p[i]));
                let t = m.temperatures()[i];
                prop_assert!(t >= 103.0 - 1e-9);
                prop_assert!(t <= max_ss[i] + 1e-9, "block {i}: {t} above envelope {}", max_ss[i]);
            }
        }
    }

    /// The boxcar average is always within the min..max of its window.
    #[test]
    fn boxcar_average_bounded(samples in prop::collection::vec(0.0f64..100.0, 1..300), window in 1usize..64) {
        let mut b = BoxcarProxy::new(window);
        let mut recent: Vec<f64> = Vec::new();
        for &s in &samples {
            b.push(s);
            recent.push(s);
            if recent.len() > window {
                recent.remove(0);
            }
            let lo = recent.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = recent.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(b.average() >= lo - 1e-9 && b.average() <= hi + 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Functional and timed execution always agree on program output.
    #[test]
    fn timing_model_preserves_architectural_results(seed in 0u64..1000) {
        // A small program with a data-dependent loop derived from the seed.
        let n = 5 + (seed % 40);
        let src = format!(
            "     li x1, {n}
                  li x5, 0
             l:   add x5, x5, x1
                  addi x1, x1, -1
                  bne x1, x0, l
                  out x5
                  halt"
        );
        let program = tdtm::isa::asm::assemble(&src).expect("assembles");
        let mut cpu = tdtm::frontend::Cpu::new(&program);
        cpu.run_to_halt(100_000).expect("halts");

        let mut core = tdtm::uarch::Core::new(tdtm::uarch::CoreConfig::alpha21264_like(), &program);
        let mut guard = 0;
        while !core.finished() {
            core.cycle();
            guard += 1;
            prop_assert!(guard < 1_000_000, "timing model hung");
        }
        prop_assert_eq!(core.output(), cpu.output());
        prop_assert_eq!(core.stats().committed, cpu.retired_count());
    }
}
