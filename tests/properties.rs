//! Randomized property tests on core data structures and invariants
//! across the workspace. Each property draws its cases from the in-repo
//! deterministic PRNG (`tdtm-prng`), so failures reproduce exactly.

use tdtm::control::design::PidGains;
use tdtm::control::pid::{quantize, PidController};
use tdtm::isa::encoding::{decode, encode};
use tdtm::isa::{FReg, Inst, Op, Reg};
use tdtm::thermal::block_model::{table3_blocks, BlockModel};
use tdtm::thermal::BoxcarProxy;
use tdtm::uarch::FetchGate;
use tdtm_prng::{cases, Rng};

fn arb_inst(rng: &mut Rng) -> Inst {
    let all = Op::all();
    let op = all[rng.index(all.len())];
    let a = rng.range_i64(0, 32) as u8;
    let b = rng.range_i64(0, 32) as u8;
    let c = rng.range_i64(0, 32) as u8;
    Inst {
        op,
        rd: Reg::new(a),
        rs1: Reg::new(b),
        rs2: Reg::new(c),
        fd: FReg::new(a),
        fs1: FReg::new(b),
        fs2: FReg::new(c),
        imm: rng.next_u64() as i32,
    }
}

/// Encoding is lossless for the operand fields each opcode uses.
#[test]
fn encoding_round_trips() {
    cases(256, 0x5eed_0001, |rng| {
        let inst = arb_inst(rng);
        let e = encode(&inst);
        let back = decode(e.word, e.ext).expect("own encodings decode");
        // Round-trip again: the decoded form is canonical (unused fields
        // zeroed), so a second round trip must be exact.
        let e2 = encode(&back);
        let back2 = decode(e2.word, e2.ext).expect("decodes");
        assert_eq!(back, back2);
        assert_eq!(back2.op, inst.op);
        assert_eq!(back2.imm, inst.imm);
    });
}

/// The fetch gate delivers exactly floor-or-ceiling of duty × cycles.
#[test]
fn fetch_gate_duty_accounting() {
    cases(128, 0x5eed_0002, |rng| {
        let level = rng.range_i64(0, 9) as u32;
        let cycles = rng.range_i64(1, 4096) as usize;
        let duty = level as f64 / 8.0;
        let mut gate = FetchGate::with_duty(duty);
        let enabled = (0..cycles).filter(|_| gate.tick()).count() as f64;
        let expected = duty * cycles as f64;
        assert!(
            (enabled - expected).abs() <= 1.0,
            "duty {duty}: {enabled} enabled of {cycles} (expected ~{expected})"
        );
    });
}

/// Quantization stays within the actuator range and on the grid.
#[test]
fn quantize_is_on_grid() {
    cases(256, 0x5eed_0003, |rng| {
        let cmd = rng.range_f64(-10.0, 10.0);
        let levels = rng.range_i64(1, 33) as u32;
        let q = quantize(cmd, levels);
        assert!((0.0..=1.0).contains(&q));
        let steps = q * levels as f64;
        assert!((steps - steps.round()).abs() < 1e-9);
    });
}

/// PID output always respects the actuator limits, whatever the error
/// sequence.
#[test]
fn pid_output_always_clamped() {
    cases(64, 0x5eed_0004, |rng| {
        let gains = PidGains { kp: 3.0, ki: 1000.0, kd: 1e-4 };
        let mut pid = PidController::new(gains, 667e-9, 0.0, 1.0);
        let n = rng.range_i64(1, 200);
        for _ in 0..n {
            let e = rng.range_f64(-50.0, 50.0);
            let u = pid.sample(e);
            assert!((0.0..=1.0).contains(&u), "output {u} out of range");
            assert!(pid.integral() >= 0.0, "paper rule: integral never negative");
        }
    });
}

/// Thermal monotonicity: more power never yields a lower temperature
/// (same initial state, same step count).
#[test]
fn thermal_step_is_monotone_in_power() {
    cases(48, 0x5eed_0005, |rng| {
        let dt = 1e-6;
        let mut low = BlockModel::new(table3_blocks(), 103.0, dt);
        let mut high = BlockModel::new(table3_blocks(), 103.0, dt);
        let p_low: Vec<f64> = (0..7).map(|_| rng.range_f64(0.0, 15.0)).collect();
        let extra = rng.range_f64(0.1, 5.0);
        let p_high: Vec<f64> = p_low.iter().map(|x| x + extra).collect();
        let steps = rng.range_i64(1, 500);
        for _ in 0..steps {
            low.step(&p_low);
            high.step(&p_high);
        }
        for i in 0..7 {
            assert!(high.temperatures()[i] >= low.temperatures()[i]);
        }
    });
}

/// Block temperature never exceeds the hottest steady state reachable
/// from the applied powers, and never drops below the heatsink.
#[test]
fn thermal_state_is_bounded() {
    cases(48, 0x5eed_0006, |rng| {
        let dt = 1e-6;
        let mut m = BlockModel::new(table3_blocks(), 103.0, dt);
        let mut max_ss = [103.0f64; 7];
        let steps = rng.range_i64(1, 100);
        for _ in 0..steps {
            let p: Vec<f64> = (0..7).map(|_| rng.range_f64(0.0, 20.0)).collect();
            m.step(&p);
            for i in 0..7 {
                max_ss[i] = max_ss[i].max(m.steady_state(i, p[i]));
                let t = m.temperatures()[i];
                assert!(t >= 103.0 - 1e-9);
                assert!(t <= max_ss[i] + 1e-9, "block {i}: {t} above envelope {}", max_ss[i]);
            }
        }
    });
}

/// The boxcar average is always within the min..max of its window.
#[test]
fn boxcar_average_bounded() {
    cases(64, 0x5eed_0007, |rng| {
        let window = rng.range_i64(1, 64) as usize;
        let n = rng.range_i64(1, 300);
        let mut b = BoxcarProxy::new(window);
        let mut recent: Vec<f64> = Vec::new();
        for _ in 0..n {
            let s = rng.range_f64(0.0, 100.0);
            b.push(s);
            recent.push(s);
            if recent.len() > window {
                recent.remove(0);
            }
            let lo = recent.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = recent.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!(b.average() >= lo - 1e-9 && b.average() <= hi + 1e-9);
        }
    });
}

/// Functional and timed execution always agree on program output.
#[test]
fn timing_model_preserves_architectural_results() {
    cases(16, 0x5eed_0008, |rng| {
        // A small program with a data-dependent loop derived from the seed.
        let n = 5 + rng.range_i64(0, 40);
        let src = format!(
            "     li x1, {n}
                  li x5, 0
             l:   add x5, x5, x1
                  addi x1, x1, -1
                  bne x1, x0, l
                  out x5
                  halt"
        );
        let program = tdtm::isa::asm::assemble(&src).expect("assembles");
        let mut cpu = tdtm::frontend::Cpu::new(&program);
        cpu.run_to_halt(100_000).expect("halts");

        let mut core = tdtm::uarch::Core::new(tdtm::uarch::CoreConfig::alpha21264_like(), &program);
        let mut guard = 0;
        while !core.finished() {
            core.cycle();
            guard += 1;
            assert!(guard < 1_000_000, "timing model hung");
        }
        assert_eq!(core.output(), cpu.output());
        assert_eq!(core.stats().committed, cpu.retired_count());
    });
}
