//! Reproducibility: the stand-in for the paper's EIO-trace methodology
//! ("to ensure reproducible results for each benchmark across multiple
//! simulations"). Two identical simulations must agree bit-for-bit on
//! every reported quantity.

use tdtm::core::{SimConfig, Simulator};
use tdtm::dtm::PolicyKind;
use tdtm::workloads::by_name;

fn run_once(bench: &str, policy: PolicyKind) -> tdtm::core::RunReport {
    let w = by_name(bench).expect("suite workload");
    let mut cfg = SimConfig::quick_test();
    cfg.max_insts = 80_000;
    cfg.dtm.policy = policy;
    let mut sim = Simulator::for_workload(cfg, &w);
    sim.run()
}

#[test]
fn characterization_runs_are_deterministic() {
    let a = run_once("crafty", PolicyKind::None);
    let b = run_once("crafty", PolicyKind::None);
    assert_eq!(a, b, "two identical runs must produce identical reports");
}

#[test]
fn dtm_runs_are_deterministic() {
    let a = run_once("gcc", PolicyKind::Pid);
    let b = run_once("gcc", PolicyKind::Pid);
    assert_eq!(a, b);
}

#[test]
fn wrong_path_noise_is_seeded() {
    // crafty mispredicts constantly, exercising the synthetic wrong-path
    // generator; determinism must hold through it.
    let a = run_once("crafty", PolicyKind::Toggle1);
    let b = run_once("crafty", PolicyKind::Toggle1);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(a.blocks, b.blocks);
}

#[test]
fn different_policies_actually_differ() {
    // A sanity guard against accidentally comparing a run with itself.
    // Short runs barely heat (the block time constant is ~126K cycles),
    // so push the heatsink up to force engagement inside the window.
    let w = by_name("gcc").expect("suite workload");
    let mut cfg = SimConfig::quick_test();
    cfg.max_insts = 80_000;
    cfg.heatsink_temp = 107.0;
    cfg.dtm.policy = PolicyKind::None;
    let mut none = Simulator::for_workload(cfg.clone(), &w);
    let r_none = none.run();
    cfg.dtm.policy = PolicyKind::Pid;
    let mut pid = Simulator::for_workload(cfg, &w);
    let r_pid = pid.run();
    assert_ne!(r_none.cycles, r_pid.cycles, "PID must change timing on a hot benchmark");
}
