//! Record-once, replay-many: capture a benchmark's power trace from one
//! cycle-level simulation, then sweep heatsink temperatures and emergency
//! thresholds through the thermal model in milliseconds.
//!
//! ```text
//! cargo run --release --example replay_sweep [benchmark]
//! ```

use tdtm::core::replay::{replay, threshold_sweep};
use tdtm::core::{SimConfig, Simulator};
use tdtm::dtm::PolicyKind;
use tdtm::workloads::by_name;

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "art".to_string());
    let workload = by_name(&bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{bench}`");
        std::process::exit(1);
    });

    let mut cfg = SimConfig {
        max_insts: 1_500_000,
        thermal_warmup_cycles: 0,
        ..SimConfig::default()
    };
    cfg.dtm.policy = PolicyKind::None;

    println!("recording {bench}'s power trace (one cycle-level simulation)...");
    let t0 = std::time::Instant::now();
    let mut sim = Simulator::for_workload(cfg.clone(), &workload);
    sim.record_power_trace(256);
    let report = sim.run();
    let trace = sim.power_trace().expect("recorded").clone();
    println!(
        "  {} cycles, IPC {:.2}, {} trace samples, {:.1} s\n",
        report.cycles,
        report.ipc,
        trace.len(),
        t0.elapsed().as_secs_f64()
    );

    println!("threshold sweep at the 103 C operating point:");
    let thresholds = [109.0, 110.0, 111.0, 112.0];
    let t1 = std::time::Instant::now();
    for (th, outcome) in threshold_sweep(&trace, &cfg.blocks, 103.0, &thresholds, false) {
        println!("  > {th:5.1} C: {:5.1}% of time", 100.0 * outcome.hot_fraction());
    }

    println!("\nheatsink what-ifs against the 111 C emergency threshold:");
    for heatsink in [100.0, 101.5, 103.0, 104.5, 106.0] {
        let outcome = replay(&trace, &cfg.blocks, heatsink, 111.0, false);
        println!(
            "  heatsink {heatsink:5.1} C: max block {:6.2} C, {:5.1}% in emergency",
            outcome.max_temp,
            100.0 * outcome.hot_fraction()
        );
    }
    println!(
        "\n(all {} replays took {:.0} ms — the open-loop path is ~1000x cheaper than",
        thresholds.len() + 5,
        t1.elapsed().as_secs_f64() * 1e3
    );
    println!("re-simulating; use it for anything that doesn't feed back into execution.)");
}
