//! Policy shoot-out on one benchmark: runs `gcc` (an extreme-category
//! workload) under each DTM policy and prints performance relative to the
//! no-DTM baseline along with emergency elimination — a single-benchmark
//! slice of the paper's Section 7 results.
//!
//! ```text
//! cargo run --release --example dtm_comparison [benchmark]
//! ```

use tdtm::core::experiments::{compare_policies, ExperimentScale};
use tdtm::dtm::PolicyKind;
use tdtm::workloads::by_name;

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_string());
    let workload = match by_name(&bench) {
        Some(w) => w,
        None => {
            eprintln!("unknown benchmark `{bench}`; try one of:");
            for w in tdtm::workloads::suite() {
                eprintln!("  {}", w.name);
            }
            std::process::exit(1);
        }
    };

    let scale = ExperimentScale { insts: 800_000, warmup_cycles: 80_000 };
    let policies = [
        PolicyKind::Toggle1,
        PolicyKind::Toggle2,
        PolicyKind::Throttle,
        PolicyKind::SpecControl,
        PolicyKind::Manual,
        PolicyKind::P,
        PolicyKind::Pi,
        PolicyKind::Pid,
    ];

    println!("benchmark: {bench} ({} category)", workload.category);
    let cmp = compare_policies(&workload, scale, &policies);
    println!(
        "baseline (no DTM): IPC {:.2}, {:.2}% of cycles in thermal emergency\n",
        cmp.baseline.ipc,
        100.0 * cmp.baseline.emergency_fraction()
    );
    println!("{:10} {:>12} {:>12} {:>10} {:>14}", "policy", "perf vs base", "emergencies", "engaged", "gated cycles");
    for run in &cmp.runs {
        println!(
            "{:10} {:>11.1}% {:>11.2}% {:>7}/{:<3} {:>14}",
            run.policy,
            run.percent_of(&cmp.baseline),
            100.0 * run.emergency_fraction(),
            run.engaged_samples,
            run.samples,
            run.gated_cycles
        );
    }
    println!("\nthe control-theoretic policies modulate the toggling level instead of slamming");
    println!("fetch off, so they hold temperature just below the threshold at a fraction of");
    println!("the performance cost (the paper's ~65% loss reduction).");
}
