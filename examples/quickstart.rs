//! Quickstart: assemble a small program, run it under PID-controlled
//! dynamic thermal management, and print the run report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tdtm::core::{SimConfig, Simulator};
use tdtm::dtm::PolicyKind;
use tdtm::isa::asm::assemble_named;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hot little kernel: dense independent integer work.
    let program = assemble_named(
        "     li x31, 2000000000
         l:   addi x5, x5, 1
              addi x6, x6, 2
              xor  x7, x7, x5
              add  x8, x8, x6
              addi x9, x9, 1
              xor  x10, x10, x8
              add  x11, x11, x5
              slli x12, x6, 1
              addi x31, x31, -1
              bne  x31, x0, l
              halt",
        "quickstart-kernel",
    )?;

    let mut config = SimConfig {
        max_insts: 500_000,
        thermal_warmup_cycles: 20_000,
        ..SimConfig::default()
    };
    config.dtm.policy = PolicyKind::Pid;

    let mut sim = Simulator::new(config, program);
    let report = sim.run();

    println!("workload:          {}", report.name);
    println!("policy:            {}", report.policy);
    println!("cycles / insts:    {} / {}", report.cycles, report.committed);
    println!("IPC:               {:.2}", report.ipc);
    println!("avg chip power:    {:.1} W (peak cycle {:.1} W)", report.avg_power, report.max_power);
    println!(
        "thermal emergency: {} cycles ({:.3}% of time)",
        report.emergency_cycles,
        100.0 * report.emergency_fraction()
    );
    println!(
        "DTM engaged on {} of {} controller samples ({} fetch cycles gated)",
        report.engaged_samples, report.samples, report.gated_cycles
    );
    println!("\nper-structure temperatures (heatsink at 103 C, emergency at 111 C):");
    for b in &report.blocks {
        println!(
            "  {:16} avg {:7.2} C   max {:7.2} C   avg power {:5.2} W",
            b.name, b.avg_temp, b.max_temp, b.avg_power
        );
    }
    Ok(())
}
