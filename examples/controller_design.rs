//! Controller design walkthrough: models a thermal block as the paper's
//! first-order-plus-dead-time plant, designs P/PD/PI/PID gains with the
//! phase-constant method, verifies stability (Routh-Hurwitz on the Padé
//! approximation, plus gain/phase margins), and simulates the closed-loop
//! step responses.
//!
//! ```text
//! cargo run --release --example controller_design
//! ```

use tdtm::control::design::{design_controller, ziegler_nichols, ControllerKind, FopdtPlant};
use tdtm::control::response::{simulate_step, ResponseMetrics};
use tdtm::control::stability::{margins, routh_hurwitz};

fn main() {
    // Plant: ~8 K of controllable temperature swing per unit of fetch
    // duty, the 84 us block time constant, and half the 667 ns sampling
    // period as dead time.
    let plant = FopdtPlant { gain: 8.0, time_constant: 8.4e-5, delay: 333e-9 };
    println!(
        "plant: P(s) = {} e^(-{:.0}ns s) / ({:.0}us s + 1)\n",
        plant.gain,
        plant.delay * 1e9,
        plant.time_constant * 1e6
    );

    for kind in [ControllerKind::P, ControllerKind::Pd, ControllerKind::Pi, ControllerKind::Pid] {
        let gains = design_controller(&plant, kind);
        let open_loop = gains.transfer_function().series(&plant.transfer_function());
        let m = margins(&open_loop, 1.0, 1e10);
        let routh = routh_hurwitz(&open_loop.pade1().characteristic_polynomial());
        let response = simulate_step(&plant, &gains, 1.0, 6.0 * plant.time_constant);
        let metrics = ResponseMetrics::from_response(&response);

        println!("{kind:?}:");
        println!("  gains: Kp={:.3}  Ki={:.3e}  Kd={:.3e}", gains.kp, gains.ki, gains.kd);
        println!(
            "  margins: phase {:.1} deg, gain {:.1}x; Routh-Hurwitz stable: {}",
            m.phase_margin.to_degrees(),
            m.gain_margin,
            routh.is_stable()
        );
        println!(
            "  step: overshoot {:.1}%, settling {:.1} us, final {:.3}",
            100.0 * metrics.overshoot_fraction,
            metrics.settling_time * 1e6,
            metrics.final_value
        );
    }

    println!("\nZiegler-Nichols (ablation baseline) for PID:");
    let zn = ziegler_nichols(&plant, ControllerKind::Pid);
    let metrics =
        ResponseMetrics::from_response(&simulate_step(&plant, &zn, 1.0, 6.0 * plant.time_constant));
    println!(
        "  gains: Kp={:.3}  Ki={:.3e}  Kd={:.3e}; overshoot {:.1}%",
        zn.kp,
        zn.ki,
        zn.kd,
        100.0 * metrics.overshoot_fraction
    );
    println!("\nthe integral controllers settle with zero offset, which is what lets the");
    println!("paper place the DTM setpoint only 0.2 K below the emergency threshold.");
}
