//! Hot-spot trace: composes the library layers by hand — timing core,
//! power model, per-block thermal model, and a PID policy — and prints a
//! time series of block temperatures and the controller's fetch duty for
//! the bursty `art` workload. This is the picture behind the paper's
//! localized-heating argument: individual structures swing by several
//! kelvin in tens of microseconds while the chip as a whole barely moves.
//!
//! ```text
//! cargo run --release --example hotspot_trace
//! ```

use tdtm::dtm::{build_policy_at, DtmConfig, PolicyKind};
use tdtm::power::{PowerConfig, PowerModel};
use tdtm::thermal::block_model::{table3_blocks, BlockModel};
use tdtm::thermal::chipwide::{ChipWideModel, ChipWideParams};
use tdtm::uarch::{Core, CoreControl, CoreConfig};
use tdtm::workloads::by_name;

fn main() {
    let workload = by_name("art").expect("art is in the suite");
    let core_cfg = CoreConfig::alpha21264_like();
    let mut core = Core::with_skip(core_cfg, workload.program(), workload.warmup_insts);
    let power = PowerModel::new(&PowerConfig::default(), &core_cfg);
    let mut thermal = BlockModel::new(table3_blocks(), 103.0, core_cfg.cycle_time());
    let mut chip = ChipWideModel::new(ChipWideParams::paper_defaults(), 27.0);
    chip.set_temperatures(103.0, 95.0);

    let dtm_cfg = DtmConfig { policy: PolicyKind::Pid, ..DtmConfig::default() };
    let mut policy = build_policy_at(&dtm_cfg, core_cfg.clock_hz);

    let names: Vec<&str> = thermal.params().iter().map(|p| p.name.as_str()).collect();
    println!("time(us)  duty  {}  chip", names.join("  "));

    let total_cycles = 1_500_000u64;
    let print_every = 50_000u64;
    let mut duty = 1.0;
    for cycle in 0..total_cycles {
        let activity = core.cycle();
        let sample = power.cycle_power(activity);
        thermal.step(&sample.thermal_powers());
        chip.step(sample.total, core_cfg.cycle_time());

        if (cycle + 1) % dtm_cfg.sample_interval == 0 {
            let cmd = policy.sample(thermal.temperatures());
            duty = cmd.fetch_duty;
            core.set_control(CoreControl { fetch_duty: duty, ..CoreControl::default() });
        }
        if (cycle + 1) % print_every == 0 {
            let t_us = (cycle + 1) as f64 * core_cfg.cycle_time() * 1e6;
            let temps: Vec<String> =
                thermal.temperatures().iter().map(|t| format!("{t:6.2}")).collect();
            println!(
                "{t_us:8.0}  {duty:4.2}  {}  {:6.2}",
                temps.join("  "),
                chip.die_temperature()
            );
        }
    }

    let (idx, hottest) = thermal.hottest();
    println!(
        "\nhottest structure at the end: {} at {hottest:.2} C; chip-wide die moved to {:.2} C",
        thermal.params()[idx].name,
        chip.die_temperature()
    );
    println!(
        "IPC {:.2}, {} mispredict recoveries, bpred accuracy {:.1}%",
        core.stats().ipc(),
        core.stats().recoveries,
        100.0 * core.bpred().accuracy()
    );
}
